//! Chrome trace-event (Perfetto / `chrome://tracing`) exporter.
//!
//! The output is a JSON object with a `traceEvents` array following the
//! Trace Event Format. Track layout:
//!
//! * one *process* per [`EventCategory`] (SM activity, packet
//!   lifecycle, scheduler, DRAM),
//! * one *thread* per entity inside it (per SM, per warp for fence
//!   stalls, per channel, per channel×bank),
//! * `"M"` metadata events name every process and thread,
//! * fence stalls are `"B"`/`"E"` duration pairs, row-open residency is
//!   a complete `"X"` span, queue occupancy is a `"C"` counter series,
//!   and everything else is an instant `"i"`.
//!
//! Timestamps are microseconds. Events from the two clock domains are
//! converted onto one wall-clock axis via [`ClockDomains`].

use crate::event::{EventCategory, TraceEvent};
use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The two simulation clock frequencies, used to convert cycle stamps
/// into wall-clock microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomains {
    /// SM / core clock in Hz.
    pub core_hz: f64,
    /// Memory (controller + DRAM) clock in Hz.
    pub mem_hz: f64,
}

impl ClockDomains {
    /// The paper's configuration: 1.2 GHz cores, 850 MHz memory.
    #[must_use]
    pub fn paper() -> Self {
        ClockDomains { core_hz: 1.2e9, mem_hz: 850.0e6 }
    }

    /// Converts a cycle stamp into microseconds on the shared axis.
    #[must_use]
    pub fn to_us(&self, cycle: u64, core_clock: bool) -> f64 {
        let hz = if core_clock { self.core_hz } else { self.mem_hz };
        cycle as f64 / hz * 1.0e6
    }
}

impl Default for ClockDomains {
    fn default() -> Self {
        ClockDomains::paper()
    }
}

/// Warp fence-stall tracks live above this tid inside the SM process,
/// keeping them clear of per-SM tids.
const WARP_TID_BASE: u64 = 1_000_000;

/// DRAM tids pack channel and bank as `channel * BANK_STRIDE + bank`.
const BANK_STRIDE: u64 = 1024;

/// Refresh windows get a dedicated track inside each channel's DRAM
/// process, below the per-bank tids (`0xff` is taken by exec).
const REFRESH_TID: u64 = BANK_STRIDE - 2;

fn pid(cat: EventCategory) -> u64 {
    match cat {
        EventCategory::Sm => 1,
        EventCategory::Packet => 2,
        EventCategory::Scheduler => 3,
        EventCategory::Dram => 4,
        EventCategory::Noc => 5,
    }
}

fn process_name(cat: EventCategory) -> &'static str {
    match cat {
        EventCategory::Sm => "SM activity",
        EventCategory::Packet => "OrderLight packets",
        EventCategory::Scheduler => "MC scheduler",
        EventCategory::Dram => "DRAM commands",
        EventCategory::Noc => "NoC pipes",
    }
}

/// Builds Chrome trace-event JSON from a flat event slice.
#[derive(Debug, Clone)]
pub struct ChromeTraceBuilder {
    clocks: ClockDomains,
}

impl ChromeTraceBuilder {
    /// Creates a builder converting cycles with `clocks`.
    ///
    /// # Panics
    /// Panics if either frequency is not finite and positive.
    #[must_use]
    pub fn new(clocks: ClockDomains) -> Self {
        assert!(
            clocks.core_hz.is_finite() && clocks.core_hz > 0.0,
            "core_hz must be finite and positive"
        );
        assert!(
            clocks.mem_hz.is_finite() && clocks.mem_hz > 0.0,
            "mem_hz must be finite and positive"
        );
        ChromeTraceBuilder { clocks }
    }

    /// Renders `events` as a complete Chrome trace JSON document.
    #[must_use]
    pub fn build(&self, events: &[TraceEvent]) -> String {
        self.build_with_drops(events, 0)
    }

    /// Like [`build`](Self::build), but records `dropped` — events a
    /// bounded sink discarded on overflow — as trace-level metadata so
    /// a truncated export is never mistaken for a complete one.
    #[must_use]
    pub fn build_with_drops(&self, events: &[TraceEvent], dropped: u64) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(events.len() + 16);
        // (pid, tid) -> thread name, collected while walking events so
        // metadata only names tracks that actually exist.
        let mut threads: BTreeMap<(u64, u64), String> = BTreeMap::new();

        for ev in events {
            let cat = ev.category();
            let p = pid(cat);
            let ts = self.clocks.to_us(ev.cycle(), ev.is_core_clock());
            match *ev {
                TraceEvent::WarpIssue { sm, warp, kind, .. } => {
                    let tid = u64::from(sm);
                    threads.entry((p, tid)).or_insert_with(|| format!("SM {sm}"));
                    rows.push(instant(
                        &format!("issue:{}", kind.label()),
                        cat,
                        p,
                        tid,
                        ts,
                        &[("warp", Arg::U(u64::from(warp)))],
                    ));
                }
                TraceEvent::WarpRetire { sm, warp, .. } => {
                    let tid = u64::from(sm);
                    threads.entry((p, tid)).or_insert_with(|| format!("SM {sm}"));
                    rows.push(instant(
                        "retire",
                        cat,
                        p,
                        tid,
                        ts,
                        &[("warp", Arg::U(u64::from(warp)))],
                    ));
                }
                TraceEvent::FenceStallBegin { sm, warp, fence_id, .. } => {
                    let tid = WARP_TID_BASE + u64::from(warp);
                    threads.entry((p, tid)).or_insert_with(|| format!("warp {warp} stalls"));
                    rows.push(span(
                        "fence-stall",
                        "B",
                        cat,
                        p,
                        tid,
                        ts,
                        None,
                        &[("sm", Arg::U(u64::from(sm))), ("fence_id", Arg::U(fence_id))],
                    ));
                }
                TraceEvent::FenceStallEnd { warp, fence_id, .. } => {
                    let tid = WARP_TID_BASE + u64::from(warp);
                    threads.entry((p, tid)).or_insert_with(|| format!("warp {warp} stalls"));
                    rows.push(span(
                        "fence-stall",
                        "E",
                        cat,
                        p,
                        tid,
                        ts,
                        None,
                        &[("fence_id", Arg::U(fence_id))],
                    ));
                }
                TraceEvent::PacketCreated { channel, group, number, warp, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "pkt-created",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("number", Arg::U(u64::from(number))),
                            ("warp", Arg::U(u64::from(warp))),
                        ],
                    ));
                }
                TraceEvent::PacketEnqueued { channel, group, number, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "pkt-enqueued",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("number", Arg::U(u64::from(number))),
                        ],
                    ));
                }
                TraceEvent::PacketMerged { channel, group, number, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "pkt-merged",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("number", Arg::U(u64::from(number))),
                        ],
                    ));
                }
                TraceEvent::FenceAck { channel, warp, fence_id, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "fence-ack",
                        cat,
                        p,
                        tid,
                        ts,
                        &[("warp", Arg::U(u64::from(warp))), ("fence_id", Arg::U(fence_id))],
                    ));
                }
                TraceEvent::ReqEnqueued { channel, group, warp, seq, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "req-enqueued",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("warp", Arg::U(u64::from(warp))),
                            ("seq", Arg::U(seq)),
                        ],
                    ));
                }
                TraceEvent::ReqIssued { channel, group, warp, seq, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "req-issued",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("warp", Arg::U(u64::from(warp))),
                            ("seq", Arg::U(seq)),
                        ],
                    ));
                }
                TraceEvent::SchedDecision { channel, side, bank, row_hit, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    let name = match side {
                        crate::event::SchedSide::Read => "sched:RD",
                        crate::event::SchedSide::Write => "sched:WR",
                    };
                    rows.push(instant(
                        name,
                        cat,
                        p,
                        tid,
                        ts,
                        &[("bank", Arg::U(u64::from(bank))), ("row_hit", Arg::B(row_hit))],
                    ));
                }
                TraceEvent::QueueSample { channel, read_q, write_q, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(counter(
                        &format!("queues ch{channel}"),
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("read_q", Arg::U(u64::from(read_q))),
                            ("write_q", Arg::U(u64::from(write_q))),
                        ],
                    ));
                }
                TraceEvent::HostReadDone { channel, warp, latency, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "host-read-done",
                        cat,
                        p,
                        tid,
                        ts,
                        &[("warp", Arg::U(u64::from(warp))), ("latency", Arg::U(latency))],
                    ));
                }
                TraceEvent::DramCmd { channel, bank, kind, row, .. } => {
                    let tid = u64::from(channel) * BANK_STRIDE + u64::from(bank);
                    threads.entry((p, tid)).or_insert_with(|| bank_track_name(channel, bank));
                    let mut args: Vec<(&str, Arg)> = Vec::new();
                    if row != u32::MAX {
                        args.push(("row", Arg::U(u64::from(row))));
                    }
                    rows.push(instant(kind.mnemonic(), cat, p, tid, ts, &args));
                }
                TraceEvent::RowInterval { channel, bank, row, open_cycles, .. } => {
                    let tid = u64::from(channel) * BANK_STRIDE + u64::from(bank);
                    threads.entry((p, tid)).or_insert_with(|| bank_track_name(channel, bank));
                    // "X" spans start at open time; the event is stamped
                    // at close time.
                    let open_ts = self.clocks.to_us(ev.cycle().saturating_sub(open_cycles), false);
                    let dur = ts - open_ts;
                    rows.push(span(
                        &format!("row {row}"),
                        "X",
                        cat,
                        p,
                        tid,
                        open_ts,
                        Some(dur),
                        &[("open_cycles", Arg::U(open_cycles))],
                    ));
                }
                TraceEvent::CoreStall { sm, cause, cycles, .. } => {
                    let tid = u64::from(sm);
                    threads.entry((p, tid)).or_insert_with(|| format!("SM {sm}"));
                    // The run covers `cycles` contiguous core cycles
                    // ending at the stamp; render the whole interval.
                    let start_ts =
                        self.clocks.to_us((ev.cycle() + 1).saturating_sub(cycles.max(1)), true);
                    rows.push(span(
                        &format!("stall:{}", cause.label()),
                        "X",
                        cat,
                        p,
                        tid,
                        start_ts,
                        Some(ts - start_ts + self.clocks.to_us(1, true)),
                        &[("cycles", Arg::U(cycles))],
                    ));
                }
                TraceEvent::ReqDequeued { channel, group, warp, seq, bank, waited, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("channel {channel}"));
                    rows.push(instant(
                        "req-dequeued",
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("group", Arg::U(u64::from(group))),
                            ("warp", Arg::U(u64::from(warp))),
                            ("seq", Arg::U(seq)),
                            ("bank", Arg::U(u64::from(bank))),
                            ("waited", Arg::U(waited)),
                        ],
                    ));
                }
                TraceEvent::PipeSample { channel, in_flight, returning, .. } => {
                    let tid = u64::from(channel);
                    threads.entry((p, tid)).or_insert_with(|| format!("pipe ch{channel}"));
                    rows.push(counter(
                        &format!("pipe ch{channel}"),
                        cat,
                        p,
                        tid,
                        ts,
                        &[
                            ("in_flight", Arg::U(u64::from(in_flight))),
                            ("returning", Arg::U(u64::from(returning))),
                        ],
                    ));
                }
                TraceEvent::RefreshWindow { channel, rfc, .. } => {
                    let tid = u64::from(channel) * BANK_STRIDE + REFRESH_TID;
                    threads.entry((p, tid)).or_insert_with(|| format!("ch{channel} refresh"));
                    let dur = self.clocks.to_us(rfc, false);
                    rows.push(span(
                        "refresh",
                        "X",
                        cat,
                        p,
                        tid,
                        ts,
                        Some(dur),
                        &[("rfc", Arg::U(rfc))],
                    ));
                }
            }
        }

        // Metadata: name every process that has at least one thread,
        // then every thread.
        let mut meta: Vec<String> = Vec::new();
        let mut named_pids: Vec<u64> = Vec::new();
        for (&(p, tid), name) in &threads {
            if !named_pids.contains(&p) {
                named_pids.push(p);
                let cat = EventCategory::ALL
                    .iter()
                    .copied()
                    .find(|&c| pid(c) == p)
                    .expect("pid maps back to a category");
                meta.push(format!(
                    r#"{{"ph":"M","name":"process_name","pid":{p},"tid":0,"args":{{"name":"{}"}}}}"#,
                    escape(process_name(cat))
                ));
            }
            meta.push(format!(
                r#"{{"ph":"M","name":"thread_name","pid":{p},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                escape(name)
            ));
        }
        // Sink completeness: how many events the bounded sink retained
        // and how many it discarded, so truncation is never silent.
        meta.push(format!(
            r#"{{"ph":"M","name":"orderlight_sink","pid":0,"tid":0,"args":{{"retained":{},"dropped":{dropped}}}}}"#,
            events.len()
        ));

        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for row in meta.iter().chain(rows.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(row);
        }
        out.push_str("\n]}\n");
        out
    }
}

fn bank_track_name(channel: u8, bank: u8) -> String {
    if bank == 0xff {
        format!("ch{channel} exec")
    } else {
        format!("ch{channel} bank{bank}")
    }
}

/// A JSON-serializable argument value.
enum Arg {
    U(u64),
    B(bool),
}

fn write_args(out: &mut String, args: &[(&str, Arg)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(k));
        match v {
            Arg::U(n) => {
                let _ = write!(out, "{n}");
            }
            Arg::B(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
}

fn instant(
    name: &str,
    cat: EventCategory,
    pid: u64,
    tid: u64,
    ts: f64,
    args: &[(&str, Arg)],
) -> String {
    let mut out = format!(
        r#"{{"ph":"i","s":"t","name":"{}","cat":"{}","pid":{pid},"tid":{tid},"ts":{ts:.6}"#,
        escape(name),
        cat.name()
    );
    if !args.is_empty() {
        write_args(&mut out, args);
    }
    out.push('}');
    out
}

#[allow(clippy::too_many_arguments)]
fn span(
    name: &str,
    ph: &str,
    cat: EventCategory,
    pid: u64,
    tid: u64,
    ts: f64,
    dur: Option<f64>,
    args: &[(&str, Arg)],
) -> String {
    let mut out = format!(
        r#"{{"ph":"{ph}","name":"{}","cat":"{}","pid":{pid},"tid":{tid},"ts":{ts:.6}"#,
        escape(name),
        cat.name()
    );
    if let Some(d) = dur {
        let _ = write!(out, ",\"dur\":{d:.6}");
    }
    if !args.is_empty() {
        write_args(&mut out, args);
    }
    out.push('}');
    out
}

fn counter(
    name: &str,
    cat: EventCategory,
    pid: u64,
    tid: u64,
    ts: f64,
    args: &[(&str, Arg)],
) -> String {
    let mut out = format!(
        r#"{{"ph":"C","name":"{}","cat":"{}","pid":{pid},"tid":{tid},"ts":{ts:.6}"#,
        escape(name),
        cat.name()
    );
    write_args(&mut out, args);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DramCmdKind, InstrKind, SchedSide};
    use crate::json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::WarpIssue { cycle: 0, sm: 0, warp: 0, kind: InstrKind::Fence },
            TraceEvent::FenceStallBegin { cycle: 1, sm: 0, warp: 0, fence_id: 7 },
            TraceEvent::PacketCreated { cycle: 1, channel: 0, group: 2, number: 3, warp: 0 },
            TraceEvent::PacketMerged { cycle: 5, channel: 0, group: 2, number: 3 },
            TraceEvent::SchedDecision {
                cycle: 6,
                channel: 0,
                side: SchedSide::Read,
                bank: 1,
                row_hit: true,
            },
            TraceEvent::QueueSample { cycle: 8, channel: 0, read_q: 4, write_q: 2 },
            TraceEvent::DramCmd {
                cycle: 9,
                channel: 0,
                bank: 1,
                kind: DramCmdKind::Activate,
                row: 42,
            },
            TraceEvent::RowInterval { cycle: 30, channel: 0, bank: 1, row: 42, open_cycles: 21 },
            TraceEvent::FenceStallEnd { cycle: 40, sm: 0, warp: 0, fence_id: 7 },
        ]
    }

    #[test]
    fn output_parses_and_covers_all_categories() {
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&sample_events());
        let doc = json::parse(&jsonic).expect("exporter output must be valid JSON");
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 9 payload events + metadata rows.
        assert!(evs.len() > 9);
        let mut cats: Vec<&str> =
            evs.iter().filter_map(|e| e.get("cat").and_then(|c| c.as_str())).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats, vec!["dram", "packet", "scheduler", "sm"]);
    }

    #[test]
    fn fence_stall_emits_matched_begin_end_pair() {
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&sample_events());
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let stalls: Vec<_> = evs
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("fence-stall"))
            .collect();
        assert_eq!(stalls.len(), 2);
        let phases: Vec<&str> =
            stalls.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert_eq!(phases, vec!["B", "E"]);
        // Same track, so Perfetto pairs them up.
        assert_eq!(stalls[0].get("tid").unwrap().as_f64(), stalls[1].get("tid").unwrap().as_f64());
        let b = stalls[0].get("ts").unwrap().as_f64().unwrap();
        let e = stalls[1].get("ts").unwrap().as_f64().unwrap();
        assert!(e > b);
    }

    #[test]
    fn queue_sample_becomes_counter_event() {
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&sample_events());
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let c = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("QueueSample exports as a counter");
        let args = c.get("args").unwrap();
        assert_eq!(args.get("read_q").unwrap().as_f64(), Some(4.0));
        assert_eq!(args.get("write_q").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn row_interval_becomes_complete_span_with_duration() {
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&sample_events());
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let x = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("RowInterval exports as a complete span");
        let dur = x.get("dur").unwrap().as_f64().unwrap();
        // 21 memory cycles at 850 MHz ≈ 0.0247 us.
        assert!((dur - 21.0 / 850.0e6 * 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn metadata_names_every_track() {
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&sample_events());
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"SM activity"));
        assert!(names.contains(&"DRAM commands"));
        assert!(names.contains(&"ch0 bank1"));
        assert!(names.contains(&"warp 0 stalls"));
    }

    #[test]
    fn clock_domains_place_core_and_mem_events_on_one_axis() {
        let clocks = ClockDomains { core_hz: 2.0e9, mem_hz: 1.0e9 };
        // 20 core cycles at 2 GHz == 10 ns == 10 mem cycles at 1 GHz.
        assert!((clocks.to_us(20, true) - clocks.to_us(10, false)).abs() < 1e-12);
    }

    #[test]
    fn attribution_events_export_on_their_own_tracks() {
        use crate::event::StallCause;
        let events = vec![
            TraceEvent::CoreStall { cycle: 9, sm: 0, cause: StallCause::FenceWait, cycles: 10 },
            TraceEvent::ReqDequeued {
                cycle: 12,
                channel: 0,
                group: 0,
                warp: 1,
                seq: 2,
                bank: 3,
                waited: 4,
            },
            TraceEvent::PipeSample { cycle: 64, channel: 0, in_flight: 5, returning: 2 },
            TraceEvent::RefreshWindow { cycle: 3315, channel: 0, rfc: 298 },
        ];
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&events);
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut cats: Vec<&str> =
            evs.iter().filter_map(|e| e.get("cat").and_then(|c| c.as_str())).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats, vec!["dram", "noc", "scheduler", "sm"]);
        let stall = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("stall:fence_wait"))
            .expect("CoreStall exports as a complete span");
        // The run covers core cycles 0..=9: starts at 0, 10 cycles long.
        assert_eq!(stall.get("ts").unwrap().as_f64(), Some(0.0));
        let dur = stall.get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 10.0 / 1.2e9 * 1e6).abs() < 1e-6);
        let pipe = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("pipe ch0"))
            .expect("PipeSample exports as a counter");
        assert_eq!(pipe.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(pipe.get("args").unwrap().get("in_flight").unwrap().as_f64(), Some(5.0));
        let refresh = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("refresh"))
            .expect("RefreshWindow exports as a complete span");
        let dur = refresh.get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 298.0 / 850.0e6 * 1e6).abs() < 1e-6);
    }

    #[test]
    fn drop_count_lands_in_sink_metadata() {
        let b = ChromeTraceBuilder::new(ClockDomains::paper());
        let jsonic = b.build_with_drops(&sample_events(), 17);
        let doc = json::parse(&jsonic).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let meta = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("orderlight_sink"))
            .expect("sink metadata row present");
        assert_eq!(meta.get("args").unwrap().get("dropped").unwrap().as_f64(), Some(17.0));
        assert_eq!(meta.get("args").unwrap().get("retained").unwrap().as_f64(), Some(9.0));
        // build() is the zero-drop special case of the same document.
        let clean = json::parse(&b.build(&sample_events())).unwrap();
        let row = clean
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("orderlight_sink"))
            .unwrap();
        assert_eq!(row.get("args").unwrap().get("dropped").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn zero_length_spans_survive_export() {
        // A fence stall that begins and ends on the same cycle, and a
        // row that closes the cycle it opened: zero-duration spans must
        // export as valid JSON with dur == 0, not negative or missing.
        let events = vec![
            TraceEvent::FenceStallBegin { cycle: 5, sm: 0, warp: 0, fence_id: 1 },
            TraceEvent::FenceStallEnd { cycle: 5, sm: 0, warp: 0, fence_id: 1 },
            TraceEvent::RowInterval { cycle: 8, channel: 0, bank: 0, row: 3, open_cycles: 0 },
        ];
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&events);
        let doc = json::parse(&jsonic).expect("zero-length spans must stay valid JSON");
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let stalls: Vec<_> = evs
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("fence-stall"))
            .collect();
        assert_eq!(stalls.len(), 2);
        let b = stalls[0].get("ts").unwrap().as_f64().unwrap();
        let e = stalls[1].get("ts").unwrap().as_f64().unwrap();
        assert!((e - b).abs() < 1e-12, "begin and end coincide");
        let x = evs
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("zero-residency row still exports");
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn cycle_zero_events_stamp_the_origin_in_both_domains() {
        let events = vec![
            TraceEvent::WarpIssue { cycle: 0, sm: 0, warp: 0, kind: InstrKind::Pim },
            TraceEvent::QueueSample { cycle: 0, channel: 0, read_q: 0, write_q: 0 },
        ];
        let jsonic = ChromeTraceBuilder::new(ClockDomains::paper()).build(&events);
        let doc = json::parse(&jsonic).unwrap();
        for e in doc.get("traceEvents").unwrap().as_array().unwrap() {
            if e.get("ph").and_then(|p| p.as_str()) == Some("M") {
                continue;
            }
            assert_eq!(e.get("ts").unwrap().as_f64(), Some(0.0), "cycle 0 maps to ts 0");
        }
    }

    #[test]
    fn interleaved_domain_stamps_share_one_monotonic_axis() {
        // Core events at 1.2 GHz and memory events at 850 MHz, emitted
        // interleaved: on the wall-clock axis their timestamps must
        // order by physical time, not by raw cycle count.
        let clocks = ClockDomains::paper();
        let events = vec![
            TraceEvent::WarpIssue { cycle: 120, sm: 0, warp: 0, kind: InstrKind::Pim }, // 100 ns
            TraceEvent::QueueSample { cycle: 85, channel: 0, read_q: 1, write_q: 0 },   // 100 ns
            TraceEvent::WarpIssue { cycle: 240, sm: 0, warp: 0, kind: InstrKind::Pim }, // 200 ns
            TraceEvent::QueueSample { cycle: 255, channel: 0, read_q: 2, write_q: 0 },  // 300 ns
        ];
        let jsonic = ChromeTraceBuilder::new(clocks).build(&events);
        let doc = json::parse(&jsonic).unwrap();
        let ts: Vec<f64> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts.len(), 4);
        // 120 core cycles and 85 memory cycles are both exactly 100 ns.
        assert!((ts[0] - 0.1).abs() < 1e-9);
        assert!((ts[0] - ts[1]).abs() < 1e-9, "same wall time across domains");
        assert!(ts[2] > ts[1] && ts[3] > ts[2], "axis stays monotonic");
    }
}
