#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, the tier-1 test suite and
# the parallel-sweep regression benchmark. Everything resolves offline
# — the workspace has no external dependencies (the criterion bench
# crate is excluded; build it separately on a machine with registry
# access).
#
# Tiers:
#   ./ci.sh                     tier 1 — fast suite (slow full-figure
#                               sweeps are #[ignore]d)
#   ORDERLIGHT_TIER2=1 ./ci.sh  also runs the ignored tier-2 tests
#                               (full Figure 10/12/13 sweeps and the
#                               large parallel-equivalence sweeps)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, tier 1)"
cargo test --workspace -q

if [[ "${ORDERLIGHT_TIER2:-0}" != "0" ]]; then
    echo "==> cargo test (tier 2: ignored full-figure sweeps)"
    cargo test --workspace -q -- --ignored
fi

# Serial-vs-parallel regression benchmark: re-runs every figure sweep
# both ways in release mode and fails on any bit-level mismatch. The
# JSON also records wall-clock, points/sec and speedup for the host.
echo "==> orderlight bench --quick (parallel-sweep regression)"
./target/release/orderlight bench --quick --out BENCH_sweep.json
echo "    wrote BENCH_sweep.json"

echo "CI green."
