#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, the tier-1 test suite and
# the parallel-sweep regression benchmark. Everything resolves offline
# — the workspace has no external dependencies (the criterion bench
# crate is excluded; build it separately on a machine with registry
# access).
#
# Tiers:
#   ./ci.sh                     tier 1 — fast suite (slow full-figure
#                               sweeps are #[ignore]d)
#   ORDERLIGHT_TIER2=1 ./ci.sh  also runs the ignored tier-2 tests
#                               (full Figure 10/12/13 sweeps and the
#                               large parallel-equivalence sweeps)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, tier 1)"
cargo test --workspace -q

# The tier-1 suite must be green under BOTH simulation cores: the
# dense per-cycle loop and the event-driven time-skip core (see
# DESIGN.md, "Quiescence contract"). The default run above already
# covers the event core's default path; these pin each explicitly.
echo "==> cargo test (workspace, tier 1, ORDERLIGHT_CORE=cycle)"
ORDERLIGHT_CORE=cycle cargo test --workspace -q

echo "==> cargo test (workspace, tier 1, ORDERLIGHT_CORE=event)"
ORDERLIGHT_CORE=event cargo test --workspace -q

if [[ "${ORDERLIGHT_TIER2:-0}" != "0" ]]; then
    echo "==> cargo test (tier 2: ignored full-figure sweeps)"
    cargo test --workspace -q -- --ignored
fi

# Calendar-queue differential gauntlet (tests/horizon_fuzz.rs):
# SplitMix64-seeded configurations sweeping refresh, BMF, TS size and
# the legal fault layers, asserting the dense and event cores agree on
# RunStats, controller stats, final DRAM bytes and ProfileReport bytes
# — at jobs=1 and jobs=8. Release mode: the gauntlet is 4 full runs
# per case. Tier 1 runs the small prefix; tier 2 the full 64 cases.
echo "==> horizon fuzz gauntlet (tier 1: small prefix, release)"
cargo test --release --test horizon_fuzz -q

if [[ "${ORDERLIGHT_TIER2:-0}" != "0" ]]; then
    echo "==> horizon fuzz gauntlet (tier 2: full 64 cases, release)"
    cargo test --release --test horizon_fuzz -q -- --include-ignored
fi

# Ordering-violation oracle gate, per backend: every ordering backend
# (orderlight, fence, seqnum, louvre, bulk) must run clean under the
# oracle, and the seeded drop-edge mutation must make the check fire
# for each (the `check --mutate` self-test exits non-zero if the
# deliberately broken schedule stays clean). The adversarial scheduler
# rides along on the mutation leg so the opened window is actually hit.
echo "==> orderlight check (oracle gate, per backend)"
./target/release/orderlight check --core cycle --data-kb 32
./target/release/orderlight check --core event --data-kb 32 --faults all --seed 1
for backend in orderlight fence seqnum louvre bulk; do
    ./target/release/orderlight check --core event --data-kb 32 --mode "$backend"
    ./target/release/orderlight check --core event --data-kb 32 --mode "$backend" \
        --faults sched --mutate 0:0
done

# Cross-primitive comparison smoke: one checked run per backend,
# recording speedup vs. the fence baseline, violation-freedom and
# in-band metadata cost. Exits non-zero if any backend's run is dirty;
# the grep then gates on the records actually landing in the v5 JSON.
echo "==> orderlight compare-ordering (cross-primitive smoke)"
tmpcmp="$(mktemp)"
./target/release/orderlight compare-ordering --data-kb 8 --out "$tmpcmp"
grep -q '"schema": "orderlight/bench-sweep/v5"' "$tmpcmp" \
    || { echo "compare-ordering did not write a v5 document"; exit 1; }
for backend in orderlight fence seqnum louvre bulk; do
    grep -q "\"ordering\": \"$backend\"" "$tmpcmp" \
        || { echo "compare-ordering is missing the $backend record"; exit 1; }
done
rm -f "$tmpcmp"

# Stall-attribution profiler gate, under the EVENT core: profile the
# Figure 5 scenario pair (fence baseline and OrderLight) on the
# time-skip core we ship. `profile` itself exits non-zero if a single
# stall cycle is attributed to no cause (the conservation invariant —
# which skip-boundary event synthesis must uphold bit-identically);
# `profile-verify` then re-reads the emitted JSON with the in-tree
# parser and re-checks the breakdown sums. A cycle-core leg of the
# fence scenario cross-checks that both cores serialize the same
# report bytes.
echo "==> orderlight profile (conservation gate, fig05 scenario, event core)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/orderlight profile Add --mode fence --core event --data-kb 32 \
    --out "$tmpdir/fig05_fence"
./target/release/orderlight profile Add --mode orderlight --core event --data-kb 32 \
    --out "$tmpdir/fig05_ol"
./target/release/orderlight profile-verify "$tmpdir/fig05_fence.profile.json" \
    "$tmpdir/fig05_ol.profile.json"
./target/release/orderlight profile Add --mode fence --core cycle --data-kb 32 \
    --out "$tmpdir/fig05_fence_cycle"
cmp "$tmpdir/fig05_fence.profile.json" "$tmpdir/fig05_fence_cycle.profile.json" \
    || { echo "profile JSON differs between cores"; exit 1; }

# Simulation-as-a-service smoke: start the daemon on an ephemeral
# loopback port, submit the fig05 OrderLight scenario from two
# concurrent clients, cmp both replies byte-for-byte against a direct
# in-process run (determinism makes a served reply exact), then assert
# a repeated request is answered from the scenario cache without
# re-simulating, and shut the daemon down cleanly.
echo "==> orderlight serve (service smoke: concurrency, cmp, cache)"
./target/release/orderlight serve --jobs 2 > "$tmpdir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for _ in $(seq 1 100); do
    grep -q "listening on" "$tmpdir/serve.log" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/^listening on \([0-9.:]*\).*/\1/p' "$tmpdir/serve.log")"
[[ -n "$addr" ]] || { echo "serve did not report a listening address"; exit 1; }
./target/release/orderlight submit --addr "$addr" --workload Add --data-kb 32 \
    --out "$tmpdir/served_a.json" > /dev/null &
client_a=$!
./target/release/orderlight submit --addr "$addr" --workload Add --data-kb 32 \
    --out "$tmpdir/served_b.json" > /dev/null &
client_b=$!
wait "$client_a" "$client_b" \
    || { echo "a concurrent submit failed"; exit 1; }
./target/release/orderlight submit --local --workload Add --data-kb 32 \
    --out "$tmpdir/direct.json"
cmp "$tmpdir/served_a.json" "$tmpdir/direct.json" \
    || { echo "served reply A differs from the direct run"; exit 1; }
cmp "$tmpdir/served_b.json" "$tmpdir/direct.json" \
    || { echo "served reply B differs from the direct run"; exit 1; }
./target/release/orderlight submit --addr "$addr" --workload Add --data-kb 32 \
    > "$tmpdir/cached.out"
grep -q '"cached":true' "$tmpdir/cached.out" \
    || { echo "repeated request was not answered from the cache"; exit 1; }

# Telemetry-plane scrape: after the two concurrent submits (plus the
# cached repeat above) the live metrics registry must attribute every
# request — at least two results, at least one cache hit — and the
# flight recorder must hold all three scenario requests. `top --once`
# must render the same snapshot as a one-screen summary.
echo "==> orderlight serve (telemetry scrape: metrics, flightrec, top)"
./target/release/orderlight submit --addr "$addr" --metrics-text > "$tmpdir/metrics.txt"
requests_result="$(awk '$1 == "orderlight_requests_result" {print $2}' "$tmpdir/metrics.txt")"
cache_hits="$(awk '$1 == "orderlight_cache_hits" {print $2}' "$tmpdir/metrics.txt")"
[[ -n "$requests_result" && "$requests_result" -ge 2 ]] \
    || { echo "metrics report requests_result=$requests_result, want >= 2"; exit 1; }
[[ -n "$cache_hits" && "$cache_hits" -ge 1 ]] \
    || { echo "metrics report cache_hits=$cache_hits, want >= 1"; exit 1; }
./target/release/orderlight submit --addr "$addr" --flightrec > "$tmpdir/flightrec.out"
recorded="$(grep -o '"outcome":"result-' "$tmpdir/flightrec.out" | wc -l)"
[[ "$recorded" -ge 3 ]] \
    || { echo "flight recorder holds $recorded requests, want >= 3"; exit 1; }
./target/release/orderlight top --addr "$addr" --once > "$tmpdir/top.out"
grep -q "^requests " "$tmpdir/top.out" && grep -q "^cache " "$tmpdir/top.out" \
    || { echo "orderlight top did not render the metrics snapshot"; exit 1; }

./target/release/orderlight submit --addr "$addr" --shutdown > /dev/null
wait "$serve_pid" || { echo "serve did not exit cleanly"; exit 1; }
trap 'rm -rf "$tmpdir"' EXIT

# Sweep regression benchmark: re-runs every figure sweep serial vs
# parallel AND cycle-core vs event-core in release mode, failing on
# any bit-level mismatch. `--profile` additionally re-runs each figure
# under the event core with the profiler attached (failing on any
# conservation violation) and records per-cause stall deltas plus the
# observability overhead in the schema-v5 JSON, alongside the
# per-backend ordering comparison records.
echo "==> orderlight bench --quick --profile (sweep + core + observability regression)"
./target/release/orderlight bench --quick --profile --out BENCH_sweep.json
echo "    wrote BENCH_sweep.json"
grep -q '"schema": "orderlight/bench-sweep/v5"' BENCH_sweep.json \
    || { echo "bench did not write a v5 document"; exit 1; }
grep -q '"ordering": "louvre"' BENCH_sweep.json \
    || { echo "bench JSON is missing the per-backend ordering records"; exit 1; }

# Observability overhead budget: the profiled event-core fig05 sweep
# must cost at most 1.5x its unprofiled wall time. The per-figure
# profile entries are single-line JSON objects, so grep + awk suffice.
echo "==> observability overhead budget (fig05 <= 1.5x)"
overhead="$(grep -o '"figure": "fig05"[^}]*"overhead": [0-9.]*' BENCH_sweep.json \
    | grep -o '"overhead": [0-9.]*' | awk '{print $2}')"
echo "    fig05 profiled/unprofiled overhead: ${overhead}x"
awk -v o="$overhead" 'BEGIN { exit !(o <= 1.5) }' \
    || { echo "fig05 observability overhead ${overhead}x exceeds the 1.5x budget"; exit 1; }

# Event-core speedup gate: the calendar-queue core must keep its edge
# over the dense core on the fence-heavy fence-ts16 sweep (~4x measured
# at merge; the 2.5x floor absorbs host noise and debug-adjacent
# slowdowns on shared runners).
echo "==> event-core speedup gate (fence-ts16 >= 2.5x)"
speedup="$(grep -o '"figure": "fence-ts16"[^}]*"event_speedup": [0-9.]*' BENCH_sweep.json \
    | grep -o '"event_speedup": [0-9.]*' | awk '{print $2}')"
echo "    fence-ts16 event-core speedup: ${speedup}x"
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.5) }' \
    || { echo "fence-ts16 event speedup ${speedup}x below the 2.5x floor"; exit 1; }

echo "CI green."
