#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, the tier-1 test suite and
# the parallel-sweep regression benchmark. Everything resolves offline
# — the workspace has no external dependencies (the criterion bench
# crate is excluded; build it separately on a machine with registry
# access).
#
# Tiers:
#   ./ci.sh                     tier 1 — fast suite (slow full-figure
#                               sweeps are #[ignore]d)
#   ORDERLIGHT_TIER2=1 ./ci.sh  also runs the ignored tier-2 tests
#                               (full Figure 10/12/13 sweeps and the
#                               large parallel-equivalence sweeps)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, tier 1)"
cargo test --workspace -q

# The tier-1 suite must be green under BOTH simulation cores: the
# dense per-cycle loop and the event-driven time-skip core (see
# DESIGN.md, "Quiescence contract"). The default run above already
# covers the event core's default path; these pin each explicitly.
echo "==> cargo test (workspace, tier 1, ORDERLIGHT_CORE=cycle)"
ORDERLIGHT_CORE=cycle cargo test --workspace -q

echo "==> cargo test (workspace, tier 1, ORDERLIGHT_CORE=event)"
ORDERLIGHT_CORE=event cargo test --workspace -q

if [[ "${ORDERLIGHT_TIER2:-0}" != "0" ]]; then
    echo "==> cargo test (tier 2: ignored full-figure sweeps)"
    cargo test --workspace -q -- --ignored
fi

# Ordering-violation oracle gate: a clean OrderLight run must stay
# clean under both cores — with and without the legal fault layers —
# and the seeded drop-edge mutation must make the oracle fire (the
# `check --mutate` self-test exits non-zero if the oracle stays
# silent on the deliberately broken schedule).
echo "==> orderlight check (oracle gate, both cores)"
./target/release/orderlight check --core cycle --data-kb 32
./target/release/orderlight check --core event --data-kb 32
./target/release/orderlight check --core event --data-kb 32 --faults all --seed 1

echo "==> orderlight check --mutate (oracle mutation gate)"
./target/release/orderlight check --core event --data-kb 32 --mutate 0:0

# Stall-attribution profiler gate: profile the Figure 5 scenario pair
# (fence baseline and OrderLight). `profile` itself exits non-zero if
# a single stall cycle is attributed to no cause (the conservation
# invariant); `profile-verify` then re-reads the emitted JSON with the
# in-tree parser and re-checks the breakdown sums.
echo "==> orderlight profile (conservation gate, fig05 scenario)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/orderlight profile Add --mode fence --data-kb 32 --out "$tmpdir/fig05_fence"
./target/release/orderlight profile Add --mode orderlight --data-kb 32 --out "$tmpdir/fig05_ol"
./target/release/orderlight profile-verify "$tmpdir/fig05_fence.profile.json" \
    "$tmpdir/fig05_ol.profile.json"

# Sweep regression benchmark: re-runs every figure sweep serial vs
# parallel AND cycle-core vs event-core in release mode, failing on
# any bit-level mismatch. The JSON also records wall-clock, points/sec
# and per-figure event-core speedup for the host.
echo "==> orderlight bench --quick (sweep + core regression)"
./target/release/orderlight bench --quick --out BENCH_sweep.json
echo "    wrote BENCH_sweep.json"

echo "CI green."
