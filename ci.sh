#!/usr/bin/env bash
# Local CI gate: formatting, lints, build and the tier-1 test suite.
# Everything resolves offline — the workspace has no external
# dependencies (the criterion bench crate is excluded; build it
# separately on a machine with registry access).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "CI green."
