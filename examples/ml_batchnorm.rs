//! Machine-learning scenario: the data-intensive batch-normalization
//! layers of a ResNet-style network (paper Section 2.1 — data-intensive
//! phases are ~32% of ResNet50 training time on GPUs).
//!
//! Runs BN forward and backward as fine-grained PIM kernels across all
//! TS sizes, fence vs OrderLight, and prints the per-layer execution
//! times and the OrderLight speedup.
//!
//! ```text
//! cargo run --release --example ml_batchnorm
//! ```

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::ExecMode;
use orderlight_suite::sim::experiments::run_point;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64 KiB of activations per structure per channel = a 1 MiB feature
    // map slice per structure across the 16 channels.
    let data = 64 * 1024;
    println!("Batch normalization on PIM-enabled HBM (BMF = 16)\n");
    for wl in [WorkloadId::BnFwd, WorkloadId::BnBwd] {
        let meta = wl.meta();
        println!("{} — {} (compute:memory {})", meta.name, meta.description, meta.ratio);
        for ts in TsSize::ALL {
            let fence = run_point(wl, ts, ExecMode::Pim(OrderingMode::Fence), 16, data)?;
            let ol = run_point(wl, ts, ExecMode::Pim(OrderingMode::OrderLight), 16, data)?;
            assert!(fence.stats.is_correct() && ol.stats.is_correct());
            println!(
                "  TS {:>7}: fence {:>7.4} ms | OrderLight {:>7.4} ms | speedup {:>5.1}x | {:.3} primitives/instr",
                ts.to_string(),
                fence.stats.exec_time_ms,
                ol.stats.exec_time_ms,
                fence.stats.exec_time_ms / ol.stats.exec_time_ms,
                ol.stats.primitives_per_pim_instr,
            );
        }
        println!();
    }
    println!("Both layers verify bit-exactly against the golden model; the backward");
    println!("phase touches six operand streams, so its row locality is worst and the");
    println!("ordering overhead of fences is most visible at small TS sizes.");
    Ok(())
}
