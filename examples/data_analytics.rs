//! Data-analytics scenario (paper Section 2.1): after feature
//! extraction, unstructured data is clustered with KMeans and
//! Histogram — data-intensive kernels that sift large datasets with
//! simple computations (distance from centres, bin updates).
//!
//! Runs the clustering stage on PIM under fence and OrderLight and
//! shows the two kernels' opposite characters: KMeans is compute-heavy
//! (10:1) with a reduction structure that keeps ordering frequent even
//! at large TS; Histogram is memory-heavy (3:2) with data-dependent bin
//! addresses.
//!
//! ```text
//! cargo run --release --example data_analytics
//! ```

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::ExecMode;
use orderlight_suite::sim::experiments::run_point;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = 64 * 1024; // feature vectors per channel
    println!("Clustering a feature-vector dataset on PIM (BMF = 16)\n");
    let mut pipeline_fence = 0.0;
    let mut pipeline_ol = 0.0;
    for wl in [WorkloadId::Kmeans, WorkloadId::Hist] {
        let meta = wl.meta();
        println!("{} — {} (compute:memory {})", meta.name, meta.description, meta.ratio);
        for ts in TsSize::ALL {
            let fence = run_point(wl, ts, ExecMode::Pim(OrderingMode::Fence), 16, data)?;
            let ol = run_point(wl, ts, ExecMode::Pim(OrderingMode::OrderLight), 16, data)?;
            assert!(fence.stats.is_correct() && ol.stats.is_correct());
            if ts == TsSize::Eighth {
                pipeline_fence += fence.stats.exec_time_ms;
                pipeline_ol += ol.stats.exec_time_ms;
            }
            println!(
                "  TS {:>7}: fence {:>7.4} ms | OrderLight {:>7.4} ms | speedup {:>5.1}x | {:.3} primitives/instr",
                ts.to_string(),
                fence.stats.exec_time_ms,
                ol.stats.exec_time_ms,
                fence.stats.exec_time_ms / ol.stats.exec_time_ms,
                ol.stats.primitives_per_pim_instr,
            );
        }
        println!();
    }
    println!(
        "Clustering pipeline (KMeans + Histogram at 1/8 RB): fence {pipeline_fence:.4} ms, OrderLight {pipeline_ol:.4} ms — {:.1}x end to end.",
        pipeline_fence / pipeline_ol
    );
    println!("KMeans' reduction keeps its primitive rate high at every TS; Histogram's");
    println!("random bin updates cost extra row activations but order cheaply.");
    Ok(())
}
