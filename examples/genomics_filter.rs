//! Genomics scenario: GRIM-style seed-location filtering (paper
//! Section 2.1 — filtering is ~65% of sequence-alignment runtime).
//!
//! The filter probes pseudo-random candidate locations of the reference
//! at 128 B granularity and accumulates Hamming distances. Because the
//! probe size is fixed by the algorithm, a bigger PIM temporary storage
//! does *not* reduce the number of ordering primitives — which is why
//! Gen_Fil shows no TS sensitivity in paper Figure 12 and why OrderLight
//! helps it at every design point.
//!
//! ```text
//! cargo run --release --example genomics_filter
//! ```

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::ExecMode;
use orderlight_suite::sim::experiments::run_point;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = 64 * 1024; // reference slice per channel
    println!("Genomic sequence filtering (Gen_Fil, GRIM algorithm) on PIM\n");
    println!("  128 B probes at pseudo-random candidate locations; 3:1 compute:memory\n");
    let mut prim_per_instr = Vec::new();
    for ts in TsSize::ALL {
        let fence =
            run_point(WorkloadId::GenFil, ts, ExecMode::Pim(OrderingMode::Fence), 16, data)?;
        let ol =
            run_point(WorkloadId::GenFil, ts, ExecMode::Pim(OrderingMode::OrderLight), 16, data)?;
        assert!(fence.stats.is_correct() && ol.stats.is_correct());
        prim_per_instr.push(ol.stats.primitives_per_pim_instr);
        println!(
            "  TS {:>7}: fence {:>7.4} ms | OrderLight {:>7.4} ms | speedup {:>5.1}x | {:.3} primitives/instr",
            ts.to_string(),
            fence.stats.exec_time_ms,
            ol.stats.exec_time_ms,
            fence.stats.exec_time_ms / ol.stats.exec_time_ms,
            ol.stats.primitives_per_pim_instr,
        );
    }
    let first = prim_per_instr[0];
    assert!(
        prim_per_instr.iter().all(|p| (p - first).abs() < 1e-9),
        "probe granularity pins the ordering rate regardless of TS"
    );
    println!("\nNote the constant primitives-per-instruction column: the 128 B probe");
    println!("granularity (not the TS size) dictates how often ordering is needed —");
    println!("paper Figure 12's observation that Gen_Fil shows no TS variability.");
    Ok(())
}
