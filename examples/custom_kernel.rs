//! Building your own PIM kernel (paper Section 5.4, "Programmability").
//!
//! The paper's near-term programmability story is intrinsics-like
//! primitives that compile to fine-grained PIM instruction streams.
//! [`KernelBuilder`] is that surface here: describe the per-tile phase
//! program, instantiate it against the memory layout, and run it on the
//! full simulated system with golden verification — all without
//! touching the workload registry.
//!
//! The custom kernel below is a fused residual-update + batch-norm
//! step, `y[i] = gamma * (x[i] + y[i]) + beta`, a fusion the paper's
//! intro motivates (feature-map addition feeding normalisation).
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use orderlight_suite::core::AluOp;
use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::System;
use orderlight_suite::workloads::{KernelBuilder, OrderingMode, WorkloadId, WorkloadInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = KernelBuilder::new("fused_residual_bn")
        .load(0) // x tile into TS
        .fetch(AluOp::Add, 1) // += y (residual)
        .exec(AluOp::ScaleImm(3), 1) // *= gamma
        .exec(AluOp::AddImm(11), 1) // += beta
        .store(1) // back into y
        .build()?;
    println!(
        "custom kernel '{}': {} phases over {} structures",
        spec.name,
        spec.phases.len(),
        spec.structures
    );
    let (c, m) = spec.ops_per_stripe();
    println!("structural compute:memory ratio {c}:{m}\n");

    for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
        let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(mode));
        exp.ts_size = TsSize::Eighth;
        exp.data_bytes_per_channel = 64 * 1024;
        let instance = WorkloadInstance::custom(
            spec.clone(),
            exp.system.mapping.clone(),
            &exp.system.groups,
            exp.ts_stripes(),
            exp.stripes_per_channel(),
            mode,
        );
        let mut system = System::build_custom(exp, instance)?;
        let stats = system.run(500_000_000)?;
        assert!(stats.is_correct(), "custom kernel must verify");
        println!(
            "  {:<10}: {:>8.4} ms | {:>6.2} GC/s | {:>7.0} GB/s PIM data | verified ({} stripes)",
            mode.to_string(),
            stats.exec_time_ms,
            stats.command_bandwidth_gcs,
            stats.data_bandwidth_gbs,
            stats.verified_matches,
        );
    }
    println!("\nThe same golden-model verification that guards the registry kernels");
    println!("covers custom ones: the sequential interpretation of *your* phase");
    println!("program is the reference the simulated DRAM is compared against.");
    Ok(())
}
