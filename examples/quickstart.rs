//! Quickstart: run the paper's running example — `c[i] = a[i] + b[i]`
//! (Figure 4) — as a fine-grained PIM kernel under all three ordering
//! regimes, verify the results against the golden model, and print the
//! paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::System;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("vector_add (c[i] = a[i] + b[i]) on 16-channel PIM-enabled HBM");
    println!("TS = 1/8 row buffer, bandwidth multiplication factor 16x\n");

    let mut baseline_ms = None;
    for (label, mode) in [
        ("no ordering  ", OrderingMode::None),
        ("fence        ", OrderingMode::Fence),
        ("OrderLight   ", OrderingMode::OrderLight),
    ] {
        let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(mode));
        exp.ts_size = TsSize::Eighth;
        exp.data_bytes_per_channel = 128 * 1024;
        let mut system = System::build(exp)?;
        let stats = system.run(500_000_000)?;
        let verdict = if stats.is_correct() {
            "results correct".to_string()
        } else {
            format!("FUNCTIONALLY INCORRECT ({} stripes wrong)", stats.verified_mismatches)
        };
        println!(
            "  {label}: {:>8.4} ms | {:>6.2} GC/s command BW | {:>7.0} GB/s PIM data BW | {verdict}",
            stats.exec_time_ms, stats.command_bandwidth_gcs, stats.data_bandwidth_gbs
        );
        if mode == OrderingMode::Fence {
            baseline_ms = Some(stats.exec_time_ms);
        } else if mode == OrderingMode::OrderLight {
            if let Some(fence) = baseline_ms {
                println!(
                    "\nOrderLight speedup over the traditional fence: {:.1}x",
                    fence / stats.exec_time_ms
                );
            }
        }
    }
    println!("\nThe unordered run is fastest *and wrong* — ordering is required for");
    println!("correctness; OrderLight provides it at the memory controller without");
    println!("stalling the core (paper Figure 7).");
    Ok(())
}
