//! A tour of the PIM design-space taxonomy (paper Section 3,
//! Figures 1-2): offload granularity x arbitration granularity, the
//! published designs in each quadrant, and the properties that make
//! FGO/FGA — the quadrant OrderLight serves — attractive.
//!
//! ```text
//! cargo run --example taxonomy_tour
//! ```

use orderlight_suite::core::taxonomy::{literature, PimClass};

fn main() {
    println!("PIM taxonomy: temporal granularity of offload and arbitration\n");
    for class in [PimClass::CGO_FGA, PimClass::CGO_CGA, PimClass::FGO_CGA, PimClass::FGO_FGA] {
        println!("{class}");
        println!(
            "  memory-side orchestration logic required : {}",
            yn(class.needs_memory_side_orchestration())
        );
        println!(
            "  concurrent host memory access allowed    : {}",
            yn(class.allows_concurrent_host_access())
        );
        println!(
            "  mainstream interfaces (DDR/HBM/GDDR/LP)  : {}",
            yn(class.mainstream_interface_compatible())
        );
        let designs: Vec<&str> =
            literature().iter().filter(|d| d.class == class).map(|d| d.name).collect();
        println!("  published designs: {}\n", designs.join(", "));
    }
    println!("FGO/FGA keeps memory-side logic simple, lets host and PIM run");
    println!("concurrently, and stays compatible with commodity interfaces — but it");
    println!("needs an efficient ordering primitive for its fine-grained command");
    println!("streams. That primitive is OrderLight.");
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
