//! Fine-grained arbitration in action (paper Sections 3.4-3.5 and
//! 5.3.1): host traffic keeps flowing *while* a PIM kernel saturates the
//! same memory channel, and the memory-group ID in the OrderLight packet
//! decides whether the host is constrained.
//!
//! This example drives one memory controller directly: a vector-add PIM
//! kernel (memory group 0, with OrderLight packets) interleaved with
//! periodic host reads, once to group-1 banks (disjoint group — the
//! paper's intended mapping) and once to group-0 banks (shared group —
//! the host now waits behind every ordering packet).
//!
//! ```text
//! cargo run --release --example concurrent_host
//! ```

use orderlight_suite::core::mapping::{AddressMapping, GroupMap};
use orderlight_suite::core::message::{MemReq, MemResp, ReqMeta};
use orderlight_suite::core::types::{BankId, ChannelId, GlobalWarpId, MemGroupId};
use orderlight_suite::core::{InstrStream, KernelInstr, Reg};
use orderlight_suite::hbm::{Channel, TimingParams};
use orderlight_suite::memctrl::{McConfig, MemoryController};
use orderlight_suite::pim::{PimUnit, TsSize};
use orderlight_suite::workloads::{OrderingMode, WorkloadId, WorkloadInstance};

/// Drives one controller with the PIM stream plus a host read every
/// `host_period` memory cycles to `host_bank`; returns the mean host
/// read latency in memory cycles.
fn run_with_host_bank(host_bank: BankId, host_period: u64) -> f64 {
    let mapping = AddressMapping::hbm_default();
    let groups = GroupMap::default();
    let instance = WorkloadInstance::new(
        WorkloadId::Add,
        mapping.clone(),
        &groups,
        TsSize::Eighth.stripes(2048),
        512,
        OrderingMode::OrderLight,
    );
    let channel_id = ChannelId(0);
    let cfg = McConfig { mapping: mapping.clone(), groups, ..McConfig::default() };
    let channel = Channel::new(TimingParams::hbm_table1(), 16, 2048);
    let pim = PimUnit::new(TsSize::Eighth, 2048, 16);
    let mut mc = MemoryController::new(cfg, channel, pim);
    for (addr, value) in instance.init_data(channel_id) {
        let loc = mapping.decode(addr);
        mc.channel_mut().store_mut().write(loc.bank, loc.row, loc.col, value);
    }

    // Lower the whole PIM kernel into controller requests up front.
    let pim_warp = GlobalWarpId::new(0, 0);
    let host_warp = GlobalWarpId::new(0, 1);
    let mut stream = instance.pim_stream(channel_id);
    let mut pending: Vec<MemReq> = Vec::new();
    let mut seq = 0;
    let mut ol_number = 0u32;
    while let Some(instr) = stream.next_instr() {
        match instr {
            KernelInstr::Pim(p) => {
                seq += 1;
                pending.push(MemReq::Pim { instr: p, meta: ReqMeta { warp: pim_warp, seq } });
            }
            KernelInstr::Ordering(_) => {
                ol_number += 1;
                pending.push(MemReq::Marker(orderlight::message::MarkerCopy {
                    marker: orderlight::message::Marker::OrderLight(
                        orderlight::packet::OrderLightPacket::new(
                            channel_id,
                            MemGroupId(0),
                            ol_number,
                        ),
                    ),
                    total_copies: 1,
                }));
            }
            _ => unreachable!("PIM streams contain only PIM/ordering instructions"),
        }
    }
    pending.reverse(); // pop from the back

    let host_base = mapping.bank_base_offset(host_bank);
    let mut now = 0u64;
    let mut issued_host = Vec::new();
    let mut latencies = Vec::new();
    let mut host_seq = 0u64;
    let mut host_stripe = 0u64;
    while !(pending.is_empty() && mc.is_idle()) || issued_host.len() > latencies.len() {
        // Feed the PIM kernel as fast as the controller accepts it.
        while let Some(req) = pending.last() {
            if !mc.can_accept(req) {
                break;
            }
            let req = pending.pop().expect("checked non-empty");
            mc.push(req);
        }
        // Periodic host read.
        if now.is_multiple_of(host_period) {
            host_stripe += 1;
            let addr = mapping.compose(channel_id, host_base + host_stripe * 32);
            host_seq += 1;
            let req = MemReq::HostRead {
                addr,
                reg: Reg(0),
                meta: ReqMeta { warp: host_warp, seq: host_seq },
            };
            if mc.can_accept(&req) {
                mc.push(req);
                issued_host.push(now);
            }
        }
        for resp in mc.tick(now) {
            if let MemResp::LoadData { warp, .. } = resp {
                if warp == host_warp {
                    latencies.push(now - issued_host[latencies.len()]);
                }
            }
        }
        now += 1;
        assert!(now < 10_000_000, "controller wedged");
    }
    latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64
}

fn main() {
    println!("Concurrent host accesses during a PIM kernel (one channel, OrderLight)\n");
    let disjoint = run_with_host_bank(BankId(8), 200);
    let shared = run_with_host_bank(BankId(0), 200);
    println!(
        "  host reads to memory group 1 (disjoint from PIM): mean latency {disjoint:>7.1} memory cycles"
    );
    println!(
        "  host reads to memory group 0 (shared with PIM)  : mean latency {shared:>7.1} memory cycles"
    );
    println!(
        "\n  sharing the PIM group costs the host {:.1}x higher latency — the",
        shared / disjoint
    );
    println!("  memory-group ID in the OrderLight packet (paper Figure 8) exists");
    println!("  precisely so non-PIM requests are never constrained.");
}
