//! # OrderLight suite — facade crate
//!
//! A from-scratch Rust reproduction of *OrderLight: Lightweight
//! Memory-Ordering Primitive for Efficient Fine-Grained PIM
//! Computations* (Nag & Balasubramonian, MICRO 2021).
//!
//! This crate re-exports the whole workspace behind one dependency and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The layering, bottom to top:
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`] | `orderlight` | PIM ISA, OrderLight packets, copy-and-merge FSM, address mapping, taxonomy |
//! | [`hbm`] | `orderlight-hbm` | HBM bank/channel timing + functional storage |
//! | [`pim`] | `orderlight-pim` | the generic parameterised PIM unit (TS + SIMD ALU) |
//! | [`memctrl`] | `orderlight-memctrl` | FR-FCFS controller with memory-centric ordering |
//! | [`noc`] | `orderlight-noc` | the GPU memory pipe with L2 sub-partition divergence |
//! | [`gpu`] | `orderlight-gpu` | SMs, warps, operand collector, fence stalls |
//! | [`workloads`] | `orderlight-workloads` | the Table 2 kernel suite + golden verification |
//! | [`sim`] | `orderlight-sim` | full-system assembly, [`ScenarioBuilder`](sim::ScenarioBuilder), experiments for every figure |
//! | [`trace`] | `orderlight-trace` | cycle-level trace events, sinks, histograms, Perfetto export |
//! | [`check`] | `orderlight-check` | happens-before ordering oracle + fault-injection check harness |
//! | [`profile`] | `orderlight-profile` | stall-attribution profiler: lifecycle spans + conservation-checked stall causes |
//!
//! # Quickstart
//!
//! ```
//! use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
//! use orderlight_suite::sim::System;
//! use orderlight_suite::workloads::{OrderingMode, WorkloadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut exp =
//!     ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
//! exp.data_bytes_per_channel = 8 * 1024; // keep the doctest fast
//! let mut system = System::build(exp)?;
//! let stats = system.run(50_000_000)?;
//! assert!(stats.is_correct());
//! println!("vector_add with OrderLight: {:.3} ms", stats.exec_time_ms);
//! # Ok(())
//! # }
//! ```

pub use orderlight as core;
pub use orderlight_check as check;
pub use orderlight_gpu as gpu;
pub use orderlight_hbm as hbm;
pub use orderlight_memctrl as memctrl;
pub use orderlight_noc as noc;
pub use orderlight_pim as pim;
pub use orderlight_profile as profile;
pub use orderlight_sim as sim;
pub use orderlight_trace as trace;
pub use orderlight_workloads as workloads;
