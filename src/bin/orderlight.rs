//! `orderlight` — command-line driver for the simulator.
//!
//! ```text
//! orderlight run [--workload NAME] [--mode gpu|none|fence|orderlight|seqnum|louvre|bulk]
//!                [--ts 16|8|4|2] [--bmf N] [--data-kb N] [--verbose]
//! orderlight check [run flags] [--faults none|noc|sched|storm|all] [--mutate CH:G]
//! orderlight trace [WORKLOAD] [run flags] [--out PATH] [--events N]
//! orderlight profile [WORKLOAD] [run flags] [--out PATH] [--events N]
//! orderlight sweep [fig05|fig10|fig12|fig13|all] [--data-kb N]
//! orderlight compare-ordering [--workload NAME] [--data-kb N] [--out PATH]
//! orderlight bench [--quick] [--profile] [--data-kb N] [--out PATH]
//! orderlight bench --compare A.json B.json [--threshold PCT]
//! orderlight serve [--addr HOST:PORT]
//! orderlight submit [run flags] [--budget N] --addr HOST:PORT [--out PATH]
//! orderlight schema
//! orderlight list
//! orderlight taxonomy
//! ```
//!
//! Every subcommand also accepts the shared execution flags, parsed
//! once by `sim::cli` before dispatch: `--jobs N` / `-j N` (worker
//! count, or `ORDERLIGHT_JOBS`), `--core cycle|event` (default: event,
//! or `ORDERLIGHT_CORE`), `--seed N` (master fault seed) and
//! `--ordering MODE` (default execution mode for run-style commands).
//! `--core` selects the dense per-cycle simulation core or the
//! bit-identical event-driven time-skip core (see `DESIGN.md`,
//! "Quiescence contract"). Traced and profiled runs honour the selected
//! core too: skip boundaries synthesize the periodic trace events, so
//! the event core feeds a sink the same events the dense core emits and
//! profile reports are byte-identical across cores (use `--core cycle`
//! as an explicit opt-out when debugging the dense loop itself).
//!
//! `serve` runs the simulation-as-a-service daemon: newline-delimited
//! `orderlight/scenario/v1` JSON requests in, typed JSON replies out,
//! independent runs batched across `--jobs` workers, completed runs
//! memoized by canonical scenario hash (exact, because `System::run`
//! is a pure function of its config). `submit` is the matching client;
//! `schema` prints the accepted wire schema. See DESIGN.md, "The
//! service surface".
//!
//! Examples:
//!
//! ```text
//! orderlight run --workload Add --mode orderlight --ts 8
//! orderlight run --workload KMeans --mode fence --ts 2 --data-kb 512
//! orderlight trace Add --mode fence --data-kb 16 --out /tmp/add_fence
//! orderlight sweep fig10 --jobs 8 > fig10.csv
//! orderlight bench --quick --out BENCH_sweep.json
//! ```
//!
//! `trace` runs the workload with a recording sink attached and writes
//! `<out>.trace.json` (Chrome trace-event JSON — load it at
//! <https://ui.perfetto.dev>), `<out>.counters.csv` (epoch-segmented
//! counters) and a text summary with latency histograms to stdout.
//!
//! `profile` runs the workload with the stall-attribution profiler
//! attached: every core stall cycle is charged to a typed cause (fence
//! wait/drain, OrderLight spacing, register, structural, credits) and
//! the request/packet lifecycle is decomposed into per-phase latencies
//! (NoC traversal, MC ingress queue, bank timing, barrier hold, fence
//! round trip, refresh lockout). The breakdown is checked against the
//! run's own stall counters — the conservation invariant — and the
//! command exits non-zero if a single cycle is unaccounted for. Writes
//! `<out>.profile.json` (machine-readable breakdown) and
//! `<out>.trace.json` (Chrome trace with queue/pipe counter tracks).
//!
//! `sweep` regenerates the design-space sweeps behind Figures 5/10/12/13
//! as CSV on stdout, executed across `--jobs` workers (default: the
//! host's available parallelism, or `ORDERLIGHT_JOBS`). Results are
//! bit-identical to serial execution at any worker count.
//!
//! `check` runs the workload with the happens-before ordering oracle
//! observing every memory controller and cross-checks the final DRAM
//! image against the sequential golden model. `--faults` enables the
//! seeded legal perturbation layers (NoC jitter, adversarial scheduler
//! tie-breaks, refresh storms) under which a correct simulator must stay
//! clean; `--mutate CH:G` elides one ordering edge on purpose and the
//! command then succeeds only if the oracle fires (the CI mutation
//! gate).
//!
//! `compare-ordering` runs the same workload under every memory
//! controller ordering backend (fence, orderlight, seqnum, louvre,
//! bulk) with the happens-before oracle attached and records speedup
//! over the fence baseline, violation-freedom, and in-band ordering
//! metadata cost per backend into a `bench-sweep/v5` JSON document.
//! It exits non-zero if any backend's run was not violation-free.
//!
//! `bench` times the same sweep serially and in parallel, verifies the
//! two result sets are bit-identical, prints wall-clock/points-per-sec/
//! speedup, and writes a machine-readable `BENCH_sweep.json` so the
//! perf trajectory of the sweep engine is recorded over time. It also
//! times every figure under the cycle core and the event core and
//! cross-checks them point by point. With `--profile` it additionally
//! re-runs every figure under the event core with the stall profiler
//! attached, records per-cause stall totals, the attribution deltas
//! against the SMs' own counters (zero when conservation holds), and
//! the observability overhead (profiled vs. unprofiled wall time) into
//! the JSON, failing on any conservation violation. With `--compare`
//! it instead diffs two previously written `BENCH_sweep.json` files
//! (any schema >= v2): per-figure wall-time and point-latency
//! p50/p95/p99 deltas, exiting non-zero when the newer file regresses
//! past `--threshold` percent (default 20). Exits non-zero on any
//! parallel/serial or cycle/event mismatch.

use orderlight_suite::check::{check_scenario, compare_backends, BackendRecord};
use orderlight_suite::core::fault::{DropEdge, FaultPlan, NocJitter, RefreshStorm};
use orderlight_suite::pim::TsSize;
use orderlight_suite::profile::{profile_points, profile_scenario_with};
use orderlight_suite::sim::cli::{take_common_flags, CommonFlags};
use orderlight_suite::sim::config::ExecMode;
use orderlight_suite::sim::core_select::{set_core_override, SimCore};
use orderlight_suite::sim::experiments::{
    fence_heavy_points, fig05_points, fig10_points, fig12_points, fig13_points, run_points,
    run_points_serial, JobSpec, SweepPoint,
};
use orderlight_suite::sim::pool::{available_jobs, Pool};
use orderlight_suite::sim::report::bar_chart;
use orderlight_suite::sim::schema::{
    parse_mode, parse_ts, parse_workload, schema_document, stats_to_value, ScenarioSpec,
};
use orderlight_suite::sim::service::{self, Server};
use orderlight_suite::sim::RunStats;
use orderlight_suite::sim::ScenarioBuilder;
use orderlight_suite::trace::{
    ChromeTraceBuilder, ClockDomains, CounterRegistry, DramCmdKind, EventCategory, Histogram,
    RingSink, SchedSide, StallCause, TraceEvent,
};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  orderlight run [--workload NAME] [--mode gpu|none|fence|orderlight|seqnum|louvre|bulk]\n                 [--ts 16|8|4|2] [--bmf N] [--data-kb N] [--credits N]\n  orderlight check [run flags] [--faults none|noc|sched|storm|all[,..]] [--mutate CH:G]\n  orderlight trace [WORKLOAD] [run flags] [--out PATH] [--events N]\n  orderlight profile [WORKLOAD] [run flags] [--out PATH] [--events N]\n  orderlight profile-verify PROFILE.json [..]\n  orderlight sweep [fig05|fig10|fig12|fig13|all] [--data-kb N]\n  orderlight compare-ordering [--workload NAME] [--data-kb N] [--out PATH]\n  orderlight bench [--quick] [--profile] [--data-kb N] [--out PATH]\n  orderlight bench --compare A.json B.json [--threshold PCT]\n  orderlight serve [--addr HOST:PORT] [--cache-max N] [--slow-ms N] [--no-telemetry]\n  orderlight submit [run flags] [--budget N] --addr HOST:PORT [--out PATH] [--span-trace PATH]\n  orderlight submit [run flags] [--budget N] --local [--out PATH]\n  orderlight submit --addr HOST:PORT --shutdown | --stats | --metrics | --metrics-text | --flightrec\n  orderlight top --addr HOST:PORT [--interval-ms N] [--count N | --once]\n  orderlight schema\n  orderlight list\n  orderlight taxonomy\nevery subcommand accepts the shared flags --jobs/-j N, --core cycle|event,\n--seed N and --ordering MODE (see `orderlight schema` for the wire surface)"
    );
    ExitCode::from(2)
}

/// The experiment knobs shared by `run` and `trace`.
struct RunOpts {
    workload: WorkloadId,
    mode: ExecMode,
    ts: TsSize,
    bmf: u32,
    data_kb: u64,
    credits: u32,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            workload: WorkloadId::Add,
            mode: ExecMode::Pim(OrderingMode::OrderLight),
            ts: TsSize::Eighth,
            bmf: 16,
            data_kb: 256,
            credits: 32,
        }
    }
}

impl RunOpts {
    /// The defaults with the shared `--ordering` flag applied.
    fn with_common(common: &CommonFlags) -> RunOpts {
        let mut opts = RunOpts::default();
        if let Some(mode) = common.ordering {
            opts.mode = mode;
        }
        opts
    }

    fn builder(&self) -> ScenarioBuilder {
        ScenarioBuilder::new(self.workload, self.mode)
            .ts_size(self.ts)
            .bmf(self.bmf)
            .data_kb(self.data_kb)
            .seq_credits(self.credits)
    }

    /// The `orderlight/scenario/v1` document for these knobs — what
    /// `submit` puts on the wire.
    fn spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.workload);
        spec.mode = self.mode;
        spec.ts = self.ts;
        spec.bmf = self.bmf;
        spec.data_bytes_per_channel = self.data_kb * 1024;
        spec.seq_credits = self.credits;
        spec
    }
}

/// Applies one common experiment flag. `Some(ok)` when the flag is
/// recognised; `None` for flags the caller must handle itself.
fn apply_common_flag(opts: &mut RunOpts, flag: &str, value: &str) -> Option<bool> {
    Some(match flag {
        "--workload" | "-w" => match parse_workload(value) {
            Some(w) => {
                opts.workload = w;
                true
            }
            None => false,
        },
        "--mode" | "-m" => match parse_mode(value) {
            Some(m) => {
                opts.mode = m;
                true
            }
            None => false,
        },
        "--ts" => match parse_ts(value) {
            Some(t) => {
                opts.ts = t;
                true
            }
            None => false,
        },
        "--bmf" => value.parse().map(|v| opts.bmf = v).is_ok(),
        "--data-kb" => value.parse().map(|v| opts.data_kb = v).is_ok(),
        "--credits" => value.parse().map(|v| opts.credits = v).is_ok(),
        _ => return None,
    })
}

fn cmd_list() -> ExitCode {
    println!("workloads (paper Table 2):");
    for id in WorkloadId::ALL {
        let m = id.meta();
        println!("  {:<8} {:<40} C:M {:<6} {:?}", m.name, m.description, m.ratio, m.suite);
    }
    ExitCode::SUCCESS
}

fn cmd_taxonomy() -> ExitCode {
    use orderlight_suite::core::taxonomy::{literature, PimClass};
    for class in [PimClass::CGO_FGA, PimClass::CGO_CGA, PimClass::FGO_CGA, PimClass::FGO_FGA] {
        let names: Vec<&str> =
            literature().iter().filter(|d| d.class == class).map(|d| d.name).collect();
        println!("{class}: {}", names.join(", "));
    }
    ExitCode::SUCCESS
}

fn print_stats(stats: &RunStats) -> bool {
    println!("  execution time        : {:.4} ms", stats.exec_time_ms);
    println!("  core cycles           : {}", stats.core_cycles);
    println!("  core stall cycles     : {}", stats.stall_cycles());
    println!("  PIM command bandwidth : {:.3} GC/s", stats.command_bandwidth_gcs);
    println!("  PIM data bandwidth    : {:.0} GB/s", stats.data_bandwidth_gbs);
    println!(
        "  ordering primitives   : {} ({:.3} per PIM instruction)",
        stats.sm.fences + stats.sm.orderlights,
        stats.primitives_per_pim_instr
    );
    if stats.sm.fences > 0 {
        println!("  wait cycles per fence : {:.0}", stats.wait_cycles_per_fence());
    }
    if stats.is_correct() {
        println!("  verification          : PASS ({} output stripes)", stats.verified_matches);
        true
    } else {
        println!(
            "  verification          : FAIL ({} of {} stripes wrong)",
            stats.verified_mismatches,
            stats.verified_matches + stats.verified_mismatches
        );
        false
    }
}

fn cmd_run(args: &[String], common: &CommonFlags) -> ExitCode {
    let mut opts = RunOpts::with_common(common);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match apply_common_flag(&mut opts, flag, value) {
            Some(true) => {}
            Some(false) => {
                eprintln!("invalid value '{value}' for {flag}");
                return usage();
            }
            None => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        }
    }

    println!(
        "running {} mode={} ts={} bmf={}x data={}KiB/structure/channel ...",
        opts.workload, opts.mode, opts.ts, opts.bmf, opts.data_kb
    );
    match opts
        .builder()
        .build()
        .map_err(|e| e.to_string())
        .and_then(|s| s.run().map_err(|e| e.to_string()))
    {
        Ok(stats) => {
            if print_stats(&stats) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a `--faults` spec: a comma-separated subset of
/// `none|noc|sched|storm|all`.
fn parse_faults(spec: &str) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    for part in spec.split(',') {
        match part.trim().to_ascii_lowercase().as_str() {
            "none" => {}
            "noc" => plan.noc_jitter = Some(NocJitter::default()),
            "sched" => plan.sched_adversary = true,
            "storm" => plan.refresh_storm = Some(RefreshStorm::default()),
            "all" => {
                plan.noc_jitter = Some(NocJitter::default());
                plan.sched_adversary = true;
                plan.refresh_storm = Some(RefreshStorm::default());
            }
            _ => return None,
        }
    }
    Some(plan)
}

/// Parses a `--mutate` spec `CH:G` (channel, memory group).
fn parse_mutate(spec: &str) -> Option<DropEdge> {
    let (ch, g) = spec.split_once(':')?;
    Some(DropEdge { channel: ch.parse().ok()?, group: g.parse().ok()? })
}

fn cmd_check(args: &[String], common: &CommonFlags) -> ExitCode {
    // Keep the default checked run small: the oracle retains per-request
    // state and the default job is CI-speed at 64 KiB.
    let mut opts = RunOpts { data_kb: 64, ..RunOpts::with_common(common) };
    let mut plan = FaultPlan::none();
    let mut mutate: Option<DropEdge> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--faults" | "-f" => match parse_faults(value) {
                Some(p) => {
                    plan = p;
                    true
                }
                None => false,
            },
            "--mutate" => match parse_mutate(value) {
                Some(edge) => {
                    mutate = Some(edge);
                    true
                }
                None => false,
            },
            _ => match apply_common_flag(&mut opts, flag, value) {
                Some(ok) => ok,
                None => {
                    eprintln!("unknown flag {flag}");
                    return usage();
                }
            },
        };
        if !ok {
            eprintln!("invalid value '{value}' for {flag}");
            return usage();
        }
    }
    plan.seed = common.seed;
    plan.drop_edge = mutate;

    println!(
        "checking {} mode={} ts={} bmf={}x data={}KiB/structure/channel (faults: noc={} sched={} storm={} seed={}{}) ...",
        opts.workload,
        opts.mode,
        opts.ts,
        opts.bmf,
        opts.data_kb,
        plan.noc_jitter.is_some(),
        plan.sched_adversary,
        plan.refresh_storm.is_some(),
        plan.seed,
        match plan.drop_edge {
            Some(e) => format!(", MUTATE ch{}:g{}", e.channel, e.group),
            None => String::new(),
        },
    );
    let outcome = match opts
        .builder()
        .faults(plan)
        .build()
        .map_err(|e| e.to_string())
        .and_then(|s| check_scenario(&s).map_err(|e| e.to_string()))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("  {}", outcome.summary());
    const SHOWN: usize = 12;
    for v in outcome.report.violations.iter().take(SHOWN) {
        println!("  {v}");
    }
    if outcome.report.violations.len() > SHOWN {
        println!("  ... and {} more violation(s)", outcome.report.violations.len() - SHOWN);
    }
    if mutate.is_some() {
        // Mutation self-test: success means the check *fired* on the
        // deliberately broken schedule — via an oracle edge, a backend
        // sanity violation, or corrupted DRAM bytes, depending on where
        // the selected backend's elided edge surfaces.
        if outcome.edges_dropped > 0 && !outcome.is_clean() {
            println!("  mutation gate         : PASS (oracle fired on the elided edge)");
            ExitCode::SUCCESS
        } else {
            println!("  mutation gate         : FAIL (oracle stayed silent on a broken schedule)");
            ExitCode::FAILURE
        }
    } else if outcome.is_clean() {
        println!("  ordering check        : PASS");
        ExitCode::SUCCESS
    } else {
        println!("  ordering check        : FAIL");
        ExitCode::FAILURE
    }
}

/// Pairs `FenceStallBegin`/`FenceStallEnd` per (warp, fence) into a
/// wait-latency histogram (core cycles).
fn fence_wait_histogram(events: &[TraceEvent]) -> Histogram {
    let mut hist = Histogram::exponential(16, 16);
    let mut begins: HashMap<(u32, u64), u64> = HashMap::new();
    for e in events {
        match *e {
            TraceEvent::FenceStallBegin { cycle, warp, fence_id, .. } => {
                begins.insert((warp, fence_id), cycle);
            }
            TraceEvent::FenceStallEnd { cycle, warp, fence_id, .. } => {
                if let Some(b) = begins.remove(&(warp, fence_id)) {
                    hist.record(cycle.saturating_sub(b));
                }
            }
            _ => {}
        }
    }
    hist
}

/// Host-read service latency histogram (memory cycles).
fn host_read_histogram(events: &[TraceEvent]) -> Histogram {
    let mut hist = Histogram::exponential(8, 14);
    for e in events {
        if let TraceEvent::HostReadDone { latency, .. } = *e {
            hist.record(latency);
        }
    }
    hist
}

/// Row open-residency histogram (memory cycles per activation).
fn row_residency_histogram(events: &[TraceEvent]) -> Histogram {
    let mut hist = Histogram::exponential(16, 14);
    for e in events {
        if let TraceEvent::RowInterval { open_cycles, .. } = *e {
            hist.record(open_cycles);
        }
    }
    hist
}

/// Epoch-segmented counters: the run is cut into `epochs` equal
/// wall-clock windows and every event tallied into its window.
fn build_counters(events: &[TraceEvent], clocks: &ClockDomains, epochs: usize) -> CounterRegistry {
    const NAMES: [&str; 22] = [
        "sm.warp_issue",
        "sm.warp_retire",
        "sm.fence_stalls",
        "sm.stall_cycles",
        "packet.created",
        "packet.enqueued",
        "packet.merged",
        "packet.fence_acks",
        "sched.picks_rd",
        "sched.picks_wr",
        "sched.row_hits",
        "sched.req_enqueued",
        "sched.req_dequeued",
        "sched.req_issued",
        "dram.act",
        "dram.pre",
        "dram.rd",
        "dram.wr",
        "dram.exec",
        "dram.row_closes",
        "dram.refreshes",
        "host.reads_done",
    ];
    let mut reg = CounterRegistry::new();
    let end_us =
        events.iter().map(|e| clocks.to_us(e.cycle(), e.is_core_clock())).fold(0.0f64, f64::max);
    let window = (end_us / epochs as f64).max(f64::MIN_POSITIVE);
    for epoch in 0..epochs {
        for name in NAMES {
            reg.set(name, 0.0);
        }
        let lo = epoch as f64 * window;
        let hi = if epoch + 1 == epochs { f64::INFINITY } else { lo + window };
        for e in events {
            let us = clocks.to_us(e.cycle(), e.is_core_clock());
            if us < lo || us >= hi {
                continue;
            }
            let name = match e {
                TraceEvent::WarpIssue { .. } => "sm.warp_issue",
                TraceEvent::WarpRetire { .. } => "sm.warp_retire",
                TraceEvent::FenceStallBegin { .. } => "sm.fence_stalls",
                TraceEvent::FenceStallEnd { .. } => continue,
                TraceEvent::CoreStall { cycles, .. } => {
                    // Weight by the run length: the counter carries
                    // stall *cycles*, not stall runs.
                    reg.add("sm.stall_cycles", *cycles as f64);
                    continue;
                }
                TraceEvent::PacketCreated { .. } => "packet.created",
                TraceEvent::PacketEnqueued { .. } => "packet.enqueued",
                TraceEvent::PacketMerged { .. } => "packet.merged",
                TraceEvent::FenceAck { .. } => "packet.fence_acks",
                TraceEvent::SchedDecision { side, row_hit, .. } => {
                    if *row_hit {
                        reg.add("sched.row_hits", 1.0);
                    }
                    match side {
                        SchedSide::Read => "sched.picks_rd",
                        SchedSide::Write => "sched.picks_wr",
                    }
                }
                TraceEvent::ReqEnqueued { .. } => "sched.req_enqueued",
                TraceEvent::ReqDequeued { .. } => "sched.req_dequeued",
                TraceEvent::ReqIssued { .. } => "sched.req_issued",
                TraceEvent::QueueSample { .. } | TraceEvent::PipeSample { .. } => continue,
                TraceEvent::DramCmd { kind, .. } => match kind {
                    DramCmdKind::Activate => "dram.act",
                    DramCmdKind::Precharge => "dram.pre",
                    DramCmdKind::Read => "dram.rd",
                    DramCmdKind::Write => "dram.wr",
                    DramCmdKind::Exec => "dram.exec",
                },
                TraceEvent::RowInterval { .. } => "dram.row_closes",
                TraceEvent::RefreshWindow { .. } => "dram.refreshes",
                TraceEvent::HostReadDone { .. } => "host.reads_done",
            };
            reg.add(name, 1.0);
        }
        reg.end_epoch();
    }
    reg
}

fn print_histogram(title: &str, hist: &Histogram) {
    if hist.total() == 0 {
        return;
    }
    println!(
        "\n{title} ({} samples, mean {:.1}, min {}, max {}):",
        hist.total(),
        hist.mean(),
        hist.min().unwrap_or(0),
        hist.max().unwrap_or(0)
    );
    let rows: Vec<(String, f64)> = hist.rows().into_iter().filter(|(_, v)| *v > 0.0).collect();
    println!("{}", bar_chart(&rows, 40));
}

/// Parses the flag set shared by `trace` and `profile`: an optional
/// positional workload, the common run flags, `--out` and `--events`.
fn parse_capture_args(args: &[String], opts: &mut RunOpts) -> Result<(String, usize), ExitCode> {
    let mut out = "orderlight".to_string();
    let mut capacity = 4_000_000usize;
    let mut rest = args;
    // Optional positional workload name first: `orderlight trace Add`.
    if let Some(first) = rest.first() {
        if !first.starts_with('-') {
            match parse_workload(first) {
                Some(w) => opts.workload = w,
                None => {
                    eprintln!("unknown workload '{first}'");
                    return Err(usage());
                }
            }
            rest = &rest[1..];
        }
    }
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return Err(usage());
        };
        let ok = match flag.as_str() {
            "--out" | "-o" => {
                out = value.clone();
                true
            }
            "--events" => value.parse().map(|v: usize| capacity = v.max(1)).is_ok(),
            _ => match apply_common_flag(opts, flag, value) {
                Some(ok) => ok,
                None => {
                    eprintln!("unknown flag {flag}");
                    return Err(usage());
                }
            },
        };
        if !ok {
            eprintln!("invalid value '{value}' for {flag}");
            return Err(usage());
        }
    }
    Ok((out, capacity))
}

fn cmd_trace(args: &[String], common: &CommonFlags) -> ExitCode {
    // Keep the default traced run small: traces of the full-size default
    // job are hundreds of MB of JSON.
    let mut opts = RunOpts { data_kb: 16, ..RunOpts::with_common(common) };
    let (out, capacity) = match parse_capture_args(args, &mut opts) {
        Ok(x) => x,
        Err(code) => return code,
    };

    println!(
        "tracing {} mode={} ts={} bmf={}x data={}KiB/structure/channel ...",
        opts.workload, opts.mode, opts.ts, opts.bmf, opts.data_kb
    );
    let ring = Arc::new(RingSink::new(capacity));
    let traced = opts
        .builder()
        .trace(ring.clone())
        .build()
        .map_err(|e| e.to_string())
        .and_then(|s| s.run_with_clocks().map_err(|e| e.to_string()));
    let (stats, clocks) = match traced {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let correct = print_stats(&stats);
    let events = ring.events();
    println!("\ncaptured {} trace events ({} dropped)", events.len(), ring.dropped());
    if ring.dropped() > 0 {
        println!(
            "  WARNING: ring full, {} later events dropped — raise --events (current {capacity})",
            ring.dropped()
        );
    }
    let mut per_cat: Vec<(String, f64)> = Vec::new();
    for cat in EventCategory::ALL {
        let n = events.iter().filter(|e| e.category() == cat).count();
        per_cat.push((cat.name().to_string(), n as f64));
    }
    println!("{}", bar_chart(&per_cat, 40));

    let mix: Vec<(String, f64)> = [
        DramCmdKind::Activate,
        DramCmdKind::Precharge,
        DramCmdKind::Read,
        DramCmdKind::Write,
        DramCmdKind::Exec,
    ]
    .into_iter()
    .map(|kind| {
        let n = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DramCmd { kind: k, .. } if *k == kind))
            .count();
        (kind.mnemonic().to_string(), n as f64)
    })
    .collect();
    println!("\nDRAM command mix:\n{}", bar_chart(&mix, 40));

    print_histogram("fence wait latency [core cycles]", &fence_wait_histogram(&events));
    print_histogram("host read latency [memory cycles]", &host_read_histogram(&events));
    print_histogram("row open residency [memory cycles]", &row_residency_histogram(&events));

    let trace_path = format!("{out}.trace.json");
    let csv_path = format!("{out}.counters.csv");
    let json = ChromeTraceBuilder::new(clocks).build_with_drops(&events, ring.dropped());
    if let Err(e) = std::fs::write(&trace_path, json) {
        eprintln!("cannot write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    let counters = build_counters(&events, &clocks, 8);
    if let Err(e) = std::fs::write(&csv_path, counters.to_csv()) {
        eprintln!("cannot write {csv_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {trace_path} (open at https://ui.perfetto.dev) and {csv_path}");
    if correct {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_profile(args: &[String], common: &CommonFlags) -> ExitCode {
    // Same default sizing as `trace`: the profiled run streams into the
    // aggregation, but the teed ring still backs the Chrome export.
    let mut opts = RunOpts { data_kb: 16, ..RunOpts::with_common(common) };
    let (out, capacity) = match parse_capture_args(args, &mut opts) {
        Ok(x) => x,
        Err(code) => return code,
    };

    println!(
        "profiling {} mode={} ts={} bmf={}x data={}KiB/structure/channel ...",
        opts.workload, opts.mode, opts.ts, opts.bmf, opts.data_kb
    );
    let ring = Arc::new(RingSink::new(capacity));
    let outcome = match opts
        .builder()
        .build()
        .map_err(|e| e.to_string())
        .and_then(|s| profile_scenario_with(&s, Some(ring.clone())).map_err(|e| e.to_string()))
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let correct = print_stats(&outcome.stats);
    println!("\ncaptured {} trace events ({} dropped)", ring.len(), ring.dropped());
    if ring.dropped() > 0 {
        println!(
            "  WARNING: ring full, {} later events dropped — the Chrome export is truncated; the profile itself streams and stays exact (raise --events, current {capacity})",
            ring.dropped()
        );
    }
    println!();
    print!("{}", outcome.report.to_text());
    println!("\n{}", outcome.summary());

    let profile_path = format!("{out}.profile.json");
    let trace_path = format!("{out}.trace.json");
    let mut profile_json = outcome.report.to_json();
    profile_json.push('\n');
    if let Err(e) = std::fs::write(&profile_path, profile_json) {
        eprintln!("cannot write {profile_path}: {e}");
        return ExitCode::FAILURE;
    }
    let chrome =
        ChromeTraceBuilder::new(outcome.clocks).build_with_drops(&ring.events(), ring.dropped());
    if let Err(e) = std::fs::write(&trace_path, chrome) {
        eprintln!("cannot write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {profile_path} and {trace_path} (open at https://ui.perfetto.dev)");
    if !outcome.is_conserved() {
        eprintln!("profile FAILED its conservation invariant — see summary above");
        return ExitCode::FAILURE;
    }
    if correct {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Validates `*.profile.json` files with the in-tree JSON parser: each
/// must parse, carry the `orderlight/profile/v1` schema tag, and hold
/// an internally consistent stall breakdown (per-cause sum == total).
/// The CI gate runs this on the freshly profiled Figure 5 scenarios.
fn cmd_profile_verify(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("profile-verify needs at least one PROFILE.json path");
        return usage();
    }
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match orderlight_suite::trace::json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: does not parse: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        if doc.get("schema").and_then(|v| v.as_str()) != Some("orderlight/profile/v1") {
            eprintln!("{path}: missing or wrong schema tag");
            return ExitCode::FAILURE;
        }
        let Some(stalls) = doc.get("stalls") else {
            eprintln!("{path}: no stall breakdown");
            return ExitCode::FAILURE;
        };
        let total = stalls.get("total").and_then(|v| v.as_f64()).unwrap_or(-1.0);
        let sum: f64 =
            ["fence_wait", "fence_drain", "ol_wait", "reg_wait", "structural", "credit_wait"]
                .iter()
                .map(|k| stalls.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN))
                .sum();
        if !(sum.is_finite() && total >= 0.0 && (sum - total).abs() < 0.5) {
            eprintln!("{path}: stall causes sum to {sum}, total says {total}");
            return ExitCode::FAILURE;
        }
        println!("{path}: ok ({total} stall cycles attributed)");
    }
    ExitCode::SUCCESS
}

/// The CSV schema shared by `orderlight sweep` and the `sweep_csv`
/// bench binary.
const SWEEP_CSV_HEADER: &str = "figure,workload,ts,mode,ordering,bmf,exec_ms,cmd_gcs,data_gbs,stall_cycles,stall_fence,stall_ol,stall_reg,stall_structural,stall_credit,primitives,prim_per_instr,verified";

fn emit_sweep_csv(figure: &str, rows: &[SweepPoint]) {
    for p in rows {
        let s = &p.stats;
        println!(
            "{figure},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{:.6},{}",
            p.workload,
            p.ts.replace(' ', ""),
            p.mode,
            p.ordering,
            p.bmf,
            s.exec_time_ms,
            s.command_bandwidth_gcs,
            s.data_bandwidth_gbs,
            s.stall_cycles(),
            s.sm.fence_stall_cycles,
            s.sm.ol_wait_cycles,
            s.sm.reg_wait_cycles,
            s.sm.structural_stall_cycles,
            s.sm.credit_wait_cycles,
            s.sm.fences + s.sm.orderlights,
            s.primitives_per_pim_instr,
            if s.is_correct() { "pass" } else { "FAIL" },
        );
    }
}

/// The figure sweeps selectable from the command line, in their
/// canonical order.
fn sweep_figures(which: &str, data: u64) -> Option<Vec<(&'static str, Vec<JobSpec>)>> {
    let all = [
        ("fig05", fig05_points(data)),
        ("fig10", fig10_points(data)),
        ("fig12", fig12_points(data)),
        ("fig13", fig13_points(data)),
    ];
    match which {
        "all" => Some(all.into_iter().collect()),
        "fig05" | "fig10" | "fig12" | "fig13" => {
            Some(all.into_iter().filter(|(name, _)| *name == which).collect())
        }
        _ => None,
    }
}

/// `ORDERLIGHT_DATA_KB`, or `default_kb` when unset/unparsable.
fn env_data_kb(default_kb: u64) -> u64 {
    std::env::var("ORDERLIGHT_DATA_KB").ok().and_then(|v| v.parse().ok()).unwrap_or(default_kb)
}

fn cmd_sweep(args: &[String], jobs: usize) -> ExitCode {
    let mut which = "all".to_string();
    let mut data_kb = env_data_kb(256);
    let mut rest = args;
    if let Some(first) = rest.first() {
        if !first.starts_with('-') {
            which.clone_from(first);
            rest = &rest[1..];
        }
    }
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--data-kb" => value.parse().map(|v| data_kb = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value '{value}' for {flag}");
            return usage();
        }
    }
    let Some(figures) = sweep_figures(&which, data_kb * 1024) else {
        eprintln!("unknown sweep '{which}' (expected fig05|fig10|fig12|fig13|all)");
        return usage();
    };
    eprintln!("sweeping {which} at {data_kb} KiB/structure/channel across {jobs} worker(s) ...");
    let pool = Pool::new(jobs);
    println!("{SWEEP_CSV_HEADER}");
    for (name, specs) in figures {
        match run_points(&specs, &pool) {
            Ok(rows) => emit_sweep_csv(name, &rows),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Serialises one backend's comparison record as a JSON object — the
/// per-backend speedup/violation/metadata-cost rows of the
/// `bench-sweep/v5` schema.
fn ordering_record_json(r: &BackendRecord) -> String {
    format!(
        "{{\"ordering\": \"{}\", \"core_cycles\": {}, \"exec_time_ms\": {:.6}, \"speedup_vs_fence\": {:.3}, \"clean\": {}, \"violations\": {}, \"sanity_violations\": {}, \"packets\": {}, \"fence_acks\": {}, \"credits\": {}, \"metadata_bits\": {}}}",
        r.ordering,
        r.core_cycles,
        r.exec_time_ms,
        r.speedup_vs_fence,
        r.clean,
        r.violations,
        r.sanity_violations,
        r.packets,
        r.fence_acks,
        r.credits,
        r.metadata_bits,
    )
}

/// Runs the cross-primitive ordering comparison and prints the
/// per-backend table. Returns the records, or an exit code on failure.
fn run_ordering_comparison(
    workload: WorkloadId,
    data_kb: u64,
    core: SimCore,
) -> Result<Vec<BackendRecord>, ExitCode> {
    println!(
        "comparing ordering backends on {workload} at {data_kb} KiB/structure/channel (core: {}):",
        core.as_str()
    );
    let records = compare_backends(workload, data_kb, core).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    println!(
        "  {:<12} {:>12} {:>10} {:>8} {:>9} {:>10} {:>8} {:>13}  verdict",
        "backend", "cycles", "ms", "speedup", "packets", "fence_acks", "credits", "metadata_bits"
    );
    for r in &records {
        println!(
            "  {:<12} {:>12} {:>10.4} {:>7.2}x {:>9} {:>10} {:>8} {:>13}  {}",
            r.ordering.to_string(),
            r.core_cycles,
            r.exec_time_ms,
            r.speedup_vs_fence,
            r.packets,
            r.fence_acks,
            r.credits,
            r.metadata_bits,
            if r.clean {
                "clean".to_string()
            } else {
                format!("DIRTY ({} violations, {} sanity)", r.violations, r.sanity_violations)
            },
        );
    }
    Ok(records)
}

/// `orderlight compare-ordering`: the cross-primitive comparison as a
/// first-class subcommand. Runs every ordering backend over the same
/// workload with the happens-before oracle attached and writes the
/// per-backend records as a `bench-sweep/v5` document. Exits non-zero
/// if any backend's run was not violation-free — a comparison between
/// a correct backend and a broken one is not a comparison.
fn cmd_compare_ordering(args: &[String], core: SimCore) -> ExitCode {
    let mut workload = WorkloadId::Add;
    let mut data_kb = env_data_kb(8);
    let mut out = "BENCH_sweep.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--workload" | "-w" => match parse_workload(value) {
                Some(w) => {
                    workload = w;
                    true
                }
                None => false,
            },
            "--data-kb" => value.parse().map(|v| data_kb = v).is_ok(),
            "--out" | "-o" => {
                out.clone_from(value);
                true
            }
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value '{value}' for {flag}");
            return usage();
        }
    }
    let records = match run_ordering_comparison(workload, data_kb, core) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let rows = records.iter().map(ordering_record_json).collect::<Vec<_>>().join(",\n    ");
    let json = format!(
        "{{\n  \"schema\": \"orderlight/bench-sweep/v5\",\n  \"workload\": \"{workload}\",\n  \"data_kb\": {data_kb},\n  \"core\": \"{}\",\n  \"ordering\": [\n    {rows}\n  ]\n}}\n",
        core.as_str(),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if records.iter().all(|r| r.clean) {
        ExitCode::SUCCESS
    } else {
        eprintln!("comparison includes a dirty backend — see the table above");
        ExitCode::FAILURE
    }
}

/// One figure's cycle-core-vs-event-core serial timing.
struct CoreBench {
    figure: &'static str,
    points: usize,
    cycle_s: f64,
    event_s: f64,
}

impl CoreBench {
    fn rate(points: usize, secs: f64) -> f64 {
        if secs > 0.0 {
            points as f64 / secs
        } else {
            0.0
        }
    }

    /// Event-core speedup over the cycle core (wall-clock ratio).
    fn speedup(&self) -> f64 {
        if self.event_s > 0.0 {
            self.cycle_s / self.event_s
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"figure\": \"{}\", \"points\": {}, \"cycle_seconds\": {:.6}, \"event_seconds\": {:.6}, \"cycle_points_per_sec\": {:.3}, \"event_points_per_sec\": {:.3}, \"event_speedup\": {:.3}}}",
            self.figure,
            self.points,
            self.cycle_s,
            self.event_s,
            Self::rate(self.points, self.cycle_s),
            Self::rate(self.points, self.event_s),
            self.speedup(),
        )
    }
}

/// Times one figure's sweep serially under each core and cross-checks
/// the two result sets point by point. Leaves the process core override
/// on whatever core ran last; the caller restores it.
fn bench_figure_cores(
    figure: &'static str,
    specs: &[JobSpec],
) -> Result<(CoreBench, bool), ExitCode> {
    let leg = |core: SimCore| {
        set_core_override(Some(core));
        let t = std::time::Instant::now();
        let rows = run_points_serial(specs).map_err(|e| {
            eprintln!("{figure} {}-core sweep failed: {e}", core.as_str());
            ExitCode::FAILURE
        })?;
        Ok::<_, ExitCode>((rows, t.elapsed().as_secs_f64()))
    };
    let (cycle_rows, cycle_s) = leg(SimCore::Cycle)?;
    let (event_rows, event_s) = leg(SimCore::Event)?;
    let identical = cycle_rows == event_rows;
    if !identical {
        for (i, (c, e)) in cycle_rows.iter().zip(&event_rows).enumerate() {
            if c != e {
                eprintln!(
                    "  MISMATCH at {figure} point {i} ({} {} {} bmf={}): event core diverges from cycle core",
                    c.workload, c.ts, c.mode, c.bmf
                );
            }
        }
    }
    let bench = CoreBench { figure, points: specs.len(), cycle_s, event_s };
    Ok((bench, identical))
}

/// One figure's event-core observability measurement from `bench
/// --profile`: per-cause stall totals, attribution deltas against the
/// SMs' own counters, and the profiled-vs-unprofiled overhead.
struct ProfileBench {
    figure: &'static str,
    points: usize,
    unprofiled_s: f64,
    profiled_s: f64,
    /// Attributed cycles per cause, in [`StallCause::ALL`] order.
    stalls: [u64; 6],
    /// Attributed minus counted, per counter: fence (wait+drain share
    /// one SM counter), ol_wait, reg_wait, structural, credit_wait,
    /// total. All zero exactly when conservation holds.
    deltas: [i64; 6],
    conserved: bool,
}

impl ProfileBench {
    /// Profiled over unprofiled wall time; 1.0 means free observability.
    fn overhead(&self) -> f64 {
        if self.unprofiled_s > 0.0 {
            self.profiled_s / self.unprofiled_s
        } else {
            0.0
        }
    }

    /// One line per figure so `ci.sh` can grep its fig05 entry and gate
    /// on the overhead field with awk alone.
    fn json(&self) -> String {
        let stalls =
            ["fence_wait", "fence_drain", "ol_wait", "reg_wait", "structural", "credit_wait"]
                .iter()
                .zip(self.stalls)
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ");
        let deltas = ["fence", "ol_wait", "reg_wait", "structural", "credit_wait", "total"]
            .iter()
            .zip(self.deltas)
            .map(|(name, v)| format!("\"{name}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"figure\": \"{}\", \"points\": {}, \"unprofiled_seconds\": {:.6}, \"profiled_seconds\": {:.6}, \"overhead\": {:.3}, \"conserved\": {}, \"stalls\": {{{stalls}}}, \"stall_deltas\": {{{deltas}}}}}",
            self.figure,
            self.points,
            self.unprofiled_s,
            self.profiled_s,
            self.overhead(),
            self.conserved,
        )
    }
}

/// Profiles one figure's sweep under the event core: times an
/// unprofiled serial leg against a profiled serial leg, folds the
/// per-cause stall totals, and computes the attribution deltas
/// (attributed minus the SMs' own counters — exactly zero, cause by
/// cause, when conservation holds).
fn bench_figure_profile(figure: &'static str, specs: &[JobSpec]) -> Result<ProfileBench, ExitCode> {
    set_core_override(Some(SimCore::Event));
    let t0 = std::time::Instant::now();
    if let Err(e) = run_points_serial(specs) {
        eprintln!("{figure} unprofiled event-core leg failed: {e}");
        return Err(ExitCode::FAILURE);
    }
    let unprofiled_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let outcomes = profile_points(specs, &Pool::new(1)).map_err(|e| {
        eprintln!("{figure} profiled event-core leg failed: {e}");
        ExitCode::FAILURE
    })?;
    let profiled_s = t1.elapsed().as_secs_f64();

    let mut stalls = [0u64; 6];
    let mut attributed = 0u64;
    // Counted by the SMs themselves: fence (wait+drain), ol, reg,
    // structural, credit, total.
    let mut counted = [0u64; 6];
    let mut conserved = true;
    for (i, o) in outcomes.iter().enumerate() {
        for (slot, cause) in StallCause::ALL.into_iter().enumerate() {
            stalls[slot] += o.report.stall(cause);
        }
        attributed += o.report.total_attributed();
        counted[0] += o.stats.sm.fence_stall_cycles;
        counted[1] += o.stats.sm.ol_wait_cycles;
        counted[2] += o.stats.sm.reg_wait_cycles;
        counted[3] += o.stats.sm.structural_stall_cycles;
        counted[4] += o.stats.sm.credit_wait_cycles;
        counted[5] += o.stats.stall_cycles();
        if !o.is_conserved() {
            conserved = false;
            eprintln!("  {figure} point {i}: {}", o.summary());
        }
    }
    let delta = |a: u64, b: u64| {
        i64::try_from(a).unwrap_or(i64::MAX) - i64::try_from(b).unwrap_or(i64::MAX)
    };
    let deltas = [
        delta(stalls[0] + stalls[1], counted[0]),
        delta(stalls[2], counted[1]),
        delta(stalls[3], counted[2]),
        delta(stalls[4], counted[3]),
        delta(stalls[5], counted[4]),
        delta(attributed, counted[5]),
    ];
    Ok(ProfileBench {
        figure,
        points: specs.len(),
        unprofiled_s,
        profiled_s,
        stalls,
        deltas,
        conserved,
    })
}

/// Serialises one bench measurement as a JSON object line set.
#[allow(clippy::too_many_arguments)]
fn bench_json(
    quick: bool,
    data_kb: u64,
    jobs: usize,
    core: SimCore,
    points: usize,
    serial_s: f64,
    parallel_s: f64,
    latency_us: (u64, u64, u64),
    figs_json: &str,
    identical: bool,
    cores_identical: bool,
    profile_json: &str,
    ordering_json: &str,
) -> String {
    let rate = |secs: f64| if secs > 0.0 { points as f64 / secs } else { 0.0 };
    let speedup = if parallel_s > 0.0 { serial_s / parallel_s } else { 0.0 };
    format!(
        "{{\n  \"schema\": \"orderlight/bench-sweep/v5\",\n  \"quick\": {quick},\n  \"data_kb\": {data_kb},\n  \"jobs\": {jobs},\n  \"core\": \"{core}\",\n  \"available_parallelism\": {avail},\n  \"figures\": [{figs_json}],\n  \"points\": {points},\n  \"serial_seconds\": {serial_s:.6},\n  \"parallel_seconds\": {parallel_s:.6},\n  \"serial_points_per_sec\": {sr:.3},\n  \"parallel_points_per_sec\": {pr:.3},\n  \"point_latency_us\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}},\n  \"speedup\": {speedup:.3},\n  \"identical\": {identical},\n  \"cores_identical\": {cores_identical},\n  \"profile\": {profile_json},\n  \"ordering\": [\n    {ordering_json}\n  ]\n}}\n",
        p50 = latency_us.0,
        p95 = latency_us.1,
        p99 = latency_us.2,
        core = core.as_str(),
        avail = available_jobs(),
        sr = rate(serial_s),
        pr = rate(parallel_s),
    )
}

/// One metric's before/after pair for `bench --compare`: prints the
/// delta and reports whether the newer value regressed past the
/// threshold (only slowdowns count — a speedup is never a regression).
fn compare_metric(label: &str, a: f64, b: f64, threshold_pct: f64) -> bool {
    if a <= 0.0 || b < 0.0 {
        println!("  {label}: not comparable ({a} -> {b})");
        return false;
    }
    let pct = (b - a) / a * 100.0;
    let regressed = pct > threshold_pct;
    println!(
        "  {label}: {a:.6} -> {b:.6}  ({pct:+.1}%{})",
        if regressed { ", REGRESSION" } else { "" }
    );
    regressed
}

/// `orderlight bench --compare A.json B.json`: diffs two bench record
/// files (schema `orderlight/bench-sweep/v2` or later — older files
/// simply lack the point-latency percentiles), printing per-figure
/// cycle/event wall-time deltas and the top-level wall-time and
/// p50/p95/p99 latency deltas. Exits non-zero if any timing in `B`
/// regresses more than `threshold_pct` percent over `A`.
fn cmd_bench_compare(a_path: &str, b_path: &str, threshold_pct: f64) -> ExitCode {
    use orderlight_suite::trace::json::{parse, Value};
    let load = |path: &str| -> Result<Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("{path}: does not parse: {e:?}"))?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("").to_string();
        match schema.strip_prefix("orderlight/bench-sweep/v").and_then(|v| v.parse::<u32>().ok()) {
            Some(v) if v >= 2 => Ok(doc),
            _ => Err(format!(
                "{path}: unsupported schema '{schema}' (need orderlight/bench-sweep/v2 or later)"
            )),
        }
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "comparing {a_path} ({}) -> {b_path} ({}), threshold {threshold_pct}%",
        a.get("schema").and_then(Value::as_str).unwrap_or("?"),
        b.get("schema").and_then(Value::as_str).unwrap_or("?"),
    );

    let mut regressed = false;
    for key in ["serial_seconds", "parallel_seconds"] {
        if let (Some(av), Some(bv)) =
            (a.get(key).and_then(Value::as_f64), b.get(key).and_then(Value::as_f64))
        {
            regressed |= compare_metric(key, av, bv, threshold_pct);
        }
    }
    for pct in ["p50", "p95", "p99"] {
        let lat = |doc: &Value| {
            doc.get("point_latency_us").and_then(|l| l.get(pct)).and_then(Value::as_f64)
        };
        if let (Some(av), Some(bv)) = (lat(&a), lat(&b)) {
            regressed |= compare_metric(&format!("point_latency_us.{pct}"), av, bv, threshold_pct);
        }
    }

    let figures = |doc: &Value| -> Vec<(String, f64, f64)> {
        doc.get("figures")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|f| {
                Some((
                    f.get("figure")?.as_str()?.to_string(),
                    f.get("cycle_seconds")?.as_f64()?,
                    f.get("event_seconds")?.as_f64()?,
                ))
            })
            .collect()
    };
    let a_figs = figures(&a);
    for (name, b_cycle, b_event) in figures(&b) {
        let Some((_, a_cycle, a_event)) = a_figs.iter().find(|(n, ..)| *n == name) else {
            println!("  {name}: only in {b_path}, skipped");
            continue;
        };
        regressed |=
            compare_metric(&format!("{name}.cycle_seconds"), *a_cycle, b_cycle, threshold_pct);
        regressed |=
            compare_metric(&format!("{name}.event_seconds"), *a_event, b_event, threshold_pct);
    }

    if regressed {
        eprintln!("REGRESSION past {threshold_pct}% — see lines above");
        ExitCode::FAILURE
    } else {
        println!("ok: no timing regressed past {threshold_pct}%");
        ExitCode::SUCCESS
    }
}

fn cmd_bench(args: &[String], common: &CommonFlags) -> ExitCode {
    let (jobs, core) = (common.jobs, common.core);
    let mut quick = false;
    let mut profile = false;
    let mut out = "BENCH_sweep.json".to_string();
    let mut data_kb: Option<u64> = None;
    let mut compare: Option<(String, String)> = None;
    let mut threshold_pct = 20.0f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let ok = match flag.as_str() {
            "--quick" => {
                quick = true;
                true
            }
            "--profile" => {
                profile = true;
                true
            }
            "--compare" => match (it.next(), it.next()) {
                (Some(a), Some(b)) => {
                    compare = Some((a.clone(), b.clone()));
                    true
                }
                _ => {
                    eprintln!("--compare needs two BENCH_sweep.json paths");
                    return usage();
                }
            },
            "--threshold" => match it.next() {
                Some(v) => v.parse().map(|n: f64| threshold_pct = n).is_ok(),
                None => {
                    eprintln!("missing value for {flag}");
                    return usage();
                }
            },
            "--out" | "-o" => match it.next() {
                Some(v) => {
                    out.clone_from(v);
                    true
                }
                None => {
                    eprintln!("missing value for {flag}");
                    return usage();
                }
            },
            "--data-kb" => match it.next() {
                Some(v) => v.parse().map(|n| data_kb = Some(n)).is_ok(),
                None => {
                    eprintln!("missing value for {flag}");
                    return usage();
                }
            },
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value for {flag}");
            return usage();
        }
    }
    if let Some((a, b)) = compare {
        return cmd_bench_compare(&a, &b, threshold_pct);
    }
    // The quick profile is the CI smoke: every figure sweep, but at a
    // reduced job size (seconds instead of minutes), still exercising
    // GPU/fence/OrderLight/unordered modes end to end.
    let data_kb = data_kb.unwrap_or_else(|| env_data_kb(if quick { 8 } else { 32 }));
    let data = data_kb * 1024;
    let figures = sweep_figures("all", data).expect("'all' is always known");
    let specs: Vec<JobSpec> = figures.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    println!(
        "benchmarking sweep execution: {} points ({}) at {data_kb} KiB/structure/channel (core: {})",
        specs.len(),
        figures.iter().map(|(n, s)| format!("{n}={}", s.len())).collect::<Vec<_>>().join(", "),
        core.as_str(),
    );

    // Untimed warm-up pass: the first sweep pays one-off costs (heap
    // growth, page faults) that would otherwise be billed entirely to
    // the serial leg and inflate the reported speedup.
    if let Err(e) = run_points_serial(&specs) {
        eprintln!("warm-up sweep failed: {e}");
        return ExitCode::FAILURE;
    }

    // The timed serial leg runs point by point (the same loop
    // `run_points_serial` performs) so each point's wall latency lands
    // in a histogram for the p50/p95/p99 summary.
    let t0 = std::time::Instant::now();
    let mut point_lat_us = Histogram::exponential(64, 24);
    let mut serial = Vec::with_capacity(specs.len());
    for spec in &specs {
        let tp = std::time::Instant::now();
        match spec.run() {
            Ok(row) => serial.push(row),
            Err(e) => {
                eprintln!("serial sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        point_lat_us.record(u64::try_from(tp.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let serial_s = t0.elapsed().as_secs_f64();
    println!("  serial  : {serial_s:.3} s  ({:.2} points/s)", specs.len() as f64 / serial_s);
    let pct = |p: f64| point_lat_us.percentile(p).unwrap_or(0);
    let (lat_p50, lat_p95, lat_p99) = (pct(0.50), pct(0.95), pct(0.99));
    println!("  latency : per-point p50 {lat_p50} us, p95 {lat_p95} us, p99 {lat_p99} us");

    let pool = Pool::new(jobs);
    let t1 = std::time::Instant::now();
    let parallel = match run_points(&specs, &pool) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parallel sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parallel_s = t1.elapsed().as_secs_f64();
    println!(
        "  parallel: {parallel_s:.3} s  ({:.2} points/s) at --jobs {jobs}",
        specs.len() as f64 / parallel_s
    );
    println!(
        "  speedup : {:.2}x on a host with {} available core(s)",
        serial_s / parallel_s,
        available_jobs()
    );

    let identical = serial == parallel;
    if identical {
        println!("  results : parallel run bit-identical to serial ({} points)", serial.len());
    } else {
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            if a != b {
                eprintln!(
                    "  MISMATCH at point {i} ({} {} {} bmf={}): parallel result diverges from serial",
                    a.workload, a.ts, a.mode, a.bmf
                );
            }
        }
        eprintln!("  results : PARALLEL/SERIAL MISMATCH — determinism contract violated");
    }

    // Cycle-core vs event-core: per-figure serial timings plus a
    // point-by-point cross-check (the quiescence contract, measured in
    // release mode rather than merely asserted in the test suite). The
    // extra fence-ts16 series is the fence-stall-dominated stress case
    // where the time-skip core pays off most.
    println!("core comparison (serial, per figure):");
    let mut series: Vec<(&'static str, Vec<JobSpec>)> =
        figures.iter().map(|(name, specs)| (*name, specs.clone())).collect();
    series.push(("fence-ts16", fence_heavy_points(data)));
    let mut cores_identical = true;
    let mut fig_benches = Vec::with_capacity(series.len());
    for (name, specs) in &series {
        let (bench, same) = match bench_figure_cores(name, specs) {
            Ok(x) => x,
            Err(code) => {
                set_core_override(Some(core));
                return code;
            }
        };
        cores_identical &= same;
        println!(
            "  {name}: cycle {:.3} s, event {:.3} s -> {:.2}x event speedup ({} points{})",
            bench.cycle_s,
            bench.event_s,
            bench.speedup(),
            bench.points,
            if same { "" } else { ", MISMATCH" },
        );
        fig_benches.push(bench);
    }
    set_core_override(Some(core));
    if !cores_identical {
        eprintln!("  results : CYCLE/EVENT MISMATCH — quiescence contract violated");
    }

    // `--profile`: close the bench→profile loop. Each figure re-runs
    // under the event core with the stall profiler attached; the JSON
    // records what the stalls are (per cause), that the attribution
    // conserves the SMs' own counters (deltas of zero), and what the
    // observability costs (profiled vs. unprofiled wall time).
    let mut profile_conserved = true;
    let profile_json = if profile {
        println!("observability (event core, serial, per figure):");
        let mut entries = Vec::with_capacity(series.len());
        for (name, specs) in &series {
            let bench = match bench_figure_profile(name, specs) {
                Ok(b) => b,
                Err(code) => {
                    set_core_override(Some(core));
                    return code;
                }
            };
            profile_conserved &= bench.conserved;
            println!(
                "  {name}: unprofiled {:.3} s, profiled {:.3} s -> {:.2}x overhead ({} points{})",
                bench.unprofiled_s,
                bench.profiled_s,
                bench.overhead(),
                bench.points,
                if bench.conserved { "" } else { ", NOT CONSERVED" },
            );
            entries.push(bench);
        }
        set_core_override(Some(core));
        if !profile_conserved {
            eprintln!("  results : CONSERVATION VIOLATED — see per-point summaries above");
        }
        let overall_unprofiled: f64 = entries.iter().map(|b| b.unprofiled_s).sum();
        let overall_profiled: f64 = entries.iter().map(|b| b.profiled_s).sum();
        let overall =
            if overall_unprofiled > 0.0 { overall_profiled / overall_unprofiled } else { 0.0 };
        let figs = entries.iter().map(ProfileBench::json).collect::<Vec<_>>().join(",\n      ");
        format!(
            "{{\n    \"core\": \"event\",\n    \"overhead\": {overall:.3},\n    \"conserved\": {profile_conserved},\n    \"figures\": [\n      {figs}\n    ]\n  }}"
        )
    } else {
        "null".to_string()
    };

    // Cross-primitive ordering comparison: one checked run per backend
    // at the bench job size, recorded per backend in the JSON so the
    // speedup/violation/metadata trajectory is versioned alongside the
    // timing trajectory.
    let ordering_records = match run_ordering_comparison(WorkloadId::Add, data_kb, core) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let ordering_clean = ordering_records.iter().all(|r| r.clean);
    if !ordering_clean {
        eprintln!("  results : ORDERING COMPARISON DIRTY — a backend failed its checked run");
    }
    let ordering_json =
        ordering_records.iter().map(ordering_record_json).collect::<Vec<_>>().join(",\n    ");

    let figs_json = fig_benches.iter().map(CoreBench::json).collect::<Vec<_>>().join(", ");
    let json = bench_json(
        quick,
        data_kb,
        jobs,
        core,
        specs.len(),
        serial_s,
        parallel_s,
        (lat_p50, lat_p95, lat_p99),
        &figs_json,
        identical,
        cores_identical,
        &profile_json,
        &ordering_json,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if identical && cores_identical && profile_conserved && ordering_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `orderlight schema`: prints the accepted `orderlight/scenario/v1`
/// wire schema — the contract `serve` enforces and `submit` speaks.
fn cmd_schema() -> ExitCode {
    print!("{}", schema_document());
    ExitCode::SUCCESS
}

/// `orderlight serve`: the simulation daemon. Binds `--addr` (default
/// loopback on an ephemeral port), prints the bound address, then
/// serves scenario requests on `--jobs` workers until a client sends
/// `{"cmd": "shutdown"}`.
fn cmd_serve(args: &[String], common: &CommonFlags) -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cache_max: usize = 0;
    let mut slow_ms: Option<u64> = None;
    let mut telemetry = true;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--no-telemetry" {
            telemetry = false;
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--addr" => {
                addr.clone_from(value);
                true
            }
            "--cache-max" => value.parse().map(|v| cache_max = v).is_ok(),
            "--slow-ms" => value.parse().map(|v| slow_ms = Some(v)).is_ok(),
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value for {flag}");
            return usage();
        }
    }
    let server = match Server::bind(&addr, common.jobs) {
        Ok(s) => s.with_cache_max(cache_max).with_slow_ms(slow_ms).with_telemetry(telemetry),
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // Parsed by `ci.sh` and scripted clients; stdout is
        // line-buffered so the line is visible before the first accept.
        Ok(bound) => println!("listening on {bound} ({} workers)", common.jobs.max(1)),
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `orderlight submit`: the service client. Builds a scenario from the
/// shared run flags, sends it to `--addr` (or runs it in-process with
/// `--local`), prints every reply line, and with `--out` writes the
/// canonical stats JSON — byte-identical between a served reply and a
/// local run, which is what the `ci.sh` smoke gate `cmp`s.
fn cmd_submit(args: &[String], common: &CommonFlags) -> ExitCode {
    use orderlight_suite::trace::json;
    let mut opts = RunOpts::with_common(common);
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut span_trace: Option<String> = None;
    let mut budget: Option<u64> = None;
    let mut local = false;
    let mut admin: Option<&str> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let ok = match flag.as_str() {
            "--local" => {
                local = true;
                true
            }
            "--shutdown" => {
                admin = Some("shutdown");
                true
            }
            "--stats" => {
                admin = Some("stats");
                true
            }
            "--metrics" => {
                admin = Some("metrics");
                true
            }
            "--metrics-text" => {
                admin = Some("metrics-text");
                true
            }
            "--flightrec" => {
                admin = Some("flightrec");
                true
            }
            _ => {
                let Some(value) = it.next() else {
                    eprintln!("missing value for {flag}");
                    return usage();
                };
                match flag.as_str() {
                    "--addr" => {
                        addr = Some(value.clone());
                        true
                    }
                    "--out" | "-o" => {
                        out = Some(value.clone());
                        true
                    }
                    "--span-trace" => {
                        span_trace = Some(value.clone());
                        true
                    }
                    "--budget" => value.parse().map(|v| budget = Some(v)).is_ok(),
                    _ => match apply_common_flag(&mut opts, flag, value) {
                        Some(ok) => ok,
                        None => {
                            eprintln!("unknown flag {flag}");
                            return usage();
                        }
                    },
                }
            }
        };
        if !ok {
            eprintln!("invalid value for {flag}");
            return usage();
        }
    }
    let mut spec = opts.spec();
    spec.budget = budget;

    let stats_json = if local {
        match spec.build().map_err(|e| e.to_string()).and_then(|s| {
            s.run().map_err(|e| e.to_string()).map(|stats| stats_to_value(&stats).to_json())
        }) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let Some(addr) = addr else {
            eprintln!("submit needs --addr HOST:PORT (or --local)");
            return usage();
        };
        let line = match admin {
            Some("metrics-text") => r#"{"cmd":"metrics","format":"text"}"#.to_string(),
            Some(cmd) => format!("{{\"cmd\":\"{cmd}\"}}"),
            None => spec.to_value().to_json(),
        };
        let replies = match service::request(&addr, &line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot reach {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(last) = replies.last() else {
            eprintln!("server closed the connection without a reply");
            return ExitCode::FAILURE;
        };
        // The exposition format is a document, not a JSON line: unwrap
        // it so the output is directly scrapeable.
        if admin == Some("metrics-text") {
            let text = json::parse(last)
                .ok()
                .and_then(|d| d.get("text").and_then(json::Value::as_str).map(ToString::to_string));
            match text {
                Some(text) => print!("{text}"),
                None => {
                    eprintln!("no text exposition in reply: {last}");
                    return ExitCode::FAILURE;
                }
            }
            return ExitCode::SUCCESS;
        }
        for reply in &replies {
            println!("{reply}");
        }
        if admin == Some("stats") {
            if let Ok(doc) = json::parse(last) {
                print_stats_summary(&doc);
            }
        }
        if admin.is_some() {
            return ExitCode::SUCCESS;
        }
        if let Some(path) = &span_trace {
            if let Err(e) = write_span_trace(path, last) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match service::extract_stats(last) {
            Some(json) => json,
            None => {
                eprintln!("no result reply — see lines above");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(path) = out {
        let mut line = stats_json.clone();
        line.push('\n');
        if let Err(e) = std::fs::write(&path, line) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else if local {
        println!("{stats_json}");
    }
    ExitCode::SUCCESS
}

/// The human-readable cache line printed under `submit --stats`.
fn print_stats_summary(doc: &orderlight_suite::trace::json::Value) {
    use orderlight_suite::trace::json::Value;
    let f = |k: &str| doc.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    let max =
        if f("cache_max") == 0.0 { "unbounded".to_string() } else { format!("{}", f("cache_max")) };
    println!(
        "cache: {} scenarios (max {max}), hit ratio {:.2} ({} hits / {} misses), {} insertions, {} evictions",
        f("cache_size"),
        f("hit_ratio"),
        f("hits"),
        f("misses"),
        f("insertions"),
        f("evictions"),
    );
}

/// Folds the `span` phases of a result reply into a Chrome trace-event
/// document (`--span-trace`), composable with `orderlight trace`
/// output for the same scenario.
fn write_span_trace(path: &str, result_line: &str) -> Result<(), String> {
    use orderlight_suite::trace::{json, spans_to_chrome, SpanPhases};
    let doc = json::parse(result_line).map_err(|e| e.to_string())?;
    let span = doc
        .get("span")
        .and_then(SpanPhases::from_value)
        .ok_or("no span in the result reply (server telemetry disabled?)")?;
    let cached = doc.get("cached").and_then(json::Value::as_bool).unwrap_or(false);
    let label = if cached { "request (cache hit)" } else { "request (cache miss)" };
    let chrome = spans_to_chrome(&[(label.to_string(), span)]);
    std::fs::write(path, chrome).map_err(|e| e.to_string())
}

/// Fetches the terminal reply of one admin command, parsed.
fn fetch_admin(addr: &str, line: &str) -> Result<orderlight_suite::trace::json::Value, String> {
    use orderlight_suite::trace::json;
    let replies = service::request(addr, line).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let last = replies.last().ok_or("server closed the connection without a reply")?;
    let doc = json::parse(last).map_err(|e| e.to_string())?;
    if doc.get("reply").and_then(json::Value::as_str) == Some("error") {
        return Err(format!("server error: {last}"));
    }
    Ok(doc)
}

/// `orderlight top`: polls a daemon's `stats`/`metrics`/`flightrec`
/// surfaces and renders a live one-screen summary.
fn cmd_top(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut count: u64 = 0; // 0 = until interrupted
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--once" {
            count = 1;
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--addr" => {
                addr = Some(value.clone());
                true
            }
            "--interval-ms" => value.parse().map(|v| interval_ms = v).is_ok(),
            "--count" => value.parse().map(|v| count = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value for {flag}");
            return usage();
        }
    }
    let Some(addr) = addr else {
        eprintln!("top needs --addr HOST:PORT");
        return usage();
    };
    let mut screens = 0u64;
    loop {
        let fetched = fetch_admin(&addr, r#"{"cmd":"stats"}"#).and_then(|stats| {
            let metrics = fetch_admin(&addr, r#"{"cmd":"metrics"}"#)?;
            let flight = fetch_admin(&addr, r#"{"cmd":"flightrec"}"#)?;
            Ok((stats, metrics, flight))
        });
        let (stats, metrics, flight) = match fetched {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if count != 1 {
            // Repaint in place on live refresh; keep output plain for
            // a single snapshot so it stays pipeable.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&addr, &stats, &metrics, &flight));
        screens += 1;
        if count > 0 && screens >= count {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One screen of daemon state from the three admin replies.
fn render_top(
    addr: &str,
    stats: &orderlight_suite::trace::json::Value,
    metrics: &orderlight_suite::trace::json::Value,
    flight: &orderlight_suite::trace::json::Value,
) -> String {
    use orderlight_suite::trace::json::Value;
    use std::fmt::Write as _;
    let snap = metrics.get("snapshot");
    let m = |group: &str, key: &str| -> f64 {
        snap.and_then(|s| s.get(group))
            .and_then(|g| g.get(key))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let hist = |group: &str, key: &str, q: &str| -> f64 {
        snap.and_then(|s| s.get(group))
            .and_then(|g| g.get(key))
            .and_then(|h| h.get(q))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let s = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(out, "orderlight serve @ {addr}");
    let _ = writeln!(
        out,
        "requests  received {:>6}  accepted {:>6}  running {:>6}  result {:>6}  error {:>6}",
        m("requests", "received"),
        m("requests", "accepted"),
        m("requests", "running"),
        m("requests", "result"),
        m("requests", "error"),
    );
    let max = if s("cache_max") == 0.0 { "inf".to_string() } else { format!("{}", s("cache_max")) };
    let _ = writeln!(
        out,
        "cache     size {}/{max}  hits {}  misses {}  ratio {:.2}  insertions {}  evictions {}",
        m("cache", "size"),
        m("cache", "hits"),
        m("cache", "misses"),
        s("hit_ratio"),
        m("cache", "insertions"),
        m("cache", "evictions"),
    );
    let _ = writeln!(
        out,
        "queue     depth {}  wait p50 {}us  p95 {}us",
        m("queue", "depth"),
        hist("timing", "queue_wait_us", "p50"),
        hist("timing", "queue_wait_us", "p95"),
    );
    let _ = writeln!(
        out,
        "workers   busy {}  jobs {}  busy_us {}  idle_us {}",
        m("workers", "busy"),
        m("workers", "jobs"),
        m("workers", "busy_us"),
        m("workers", "idle_us"),
    );
    let _ = writeln!(
        out,
        "io        bytes_in {}  bytes_out {}",
        m("io", "bytes_in"),
        m("io", "bytes_out"),
    );
    let slo = stats.get("slo");
    let p = |k: &str| slo.and_then(|s| s.get(k)).and_then(Value::as_f64).unwrap_or(0.0);
    let _ = writeln!(out, "latency   p50 {}us  p95 {}us  p99 {}us", p("p50"), p("p95"), p("p99"));
    let _ = writeln!(out, "recent requests:");
    let _ = writeln!(out, "  {:>5}  {:<14}  {:>12}  scenario", "seq", "outcome", "latency_us");
    let empty = Vec::new();
    let requests = flight.get("requests").and_then(Value::as_array).unwrap_or(&empty);
    for r in requests.iter().rev().take(10) {
        let _ = writeln!(
            out,
            "  {:>5}  {:<14}  {:>12}  {}",
            r.get("seq").and_then(Value::as_f64).unwrap_or(0.0),
            r.get("outcome").and_then(Value::as_str).unwrap_or("?"),
            r.get("latency_us").and_then(Value::as_f64).unwrap_or(0.0),
            r.get("scenario_hash").and_then(Value::as_str).unwrap_or("-"),
        );
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The shared flags (--jobs/--core/--seed/--ordering) are global:
    // strip them before subcommand dispatch and install the core choice
    // process-wide (explicit flag beats ORDERLIGHT_CORE).
    let (args, common) = match take_common_flags(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    common.install_core();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], &common),
        Some("check") => cmd_check(&args[1..], &common),
        Some("trace") => cmd_trace(&args[1..], &common),
        Some("profile") => cmd_profile(&args[1..], &common),
        Some("profile-verify") => cmd_profile_verify(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..], common.jobs),
        Some("compare-ordering") => cmd_compare_ordering(&args[1..], common.core),
        Some("bench") => cmd_bench(&args[1..], &common),
        Some("serve") => cmd_serve(&args[1..], &common),
        Some("submit") => cmd_submit(&args[1..], &common),
        Some("top") => cmd_top(&args[1..]),
        Some("schema") => cmd_schema(),
        Some("list") => cmd_list(),
        Some("taxonomy") => cmd_taxonomy(),
        _ => usage(),
    }
}
