//! `orderlight` — command-line driver for the simulator.
//!
//! ```text
//! orderlight run [--workload NAME] [--mode gpu|none|fence|orderlight]
//!                [--ts 16|8|4|2] [--bmf N] [--data-kb N] [--verbose]
//! orderlight list
//! orderlight taxonomy
//! ```
//!
//! Examples:
//!
//! ```text
//! orderlight run --workload Add --mode orderlight --ts 8
//! orderlight run --workload KMeans --mode fence --ts 2 --data-kb 512
//! ```

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::{apply_sm_policy, run_experiment};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  orderlight run [--workload NAME] [--mode gpu|none|fence|orderlight|seqnum]\n                 [--ts 16|8|4|2] [--bmf N] [--data-kb N] [--credits N]\n  orderlight list\n  orderlight taxonomy"
    );
    ExitCode::from(2)
}

fn parse_workload(name: &str) -> Option<WorkloadId> {
    WorkloadId::ALL
        .into_iter()
        .find(|w| w.meta().name.eq_ignore_ascii_case(name))
}

fn parse_mode(name: &str) -> Option<ExecMode> {
    match name.to_ascii_lowercase().as_str() {
        "gpu" => Some(ExecMode::Gpu),
        "none" => Some(ExecMode::Pim(OrderingMode::None)),
        "fence" => Some(ExecMode::Pim(OrderingMode::Fence)),
        "orderlight" | "ol" => Some(ExecMode::Pim(OrderingMode::OrderLight)),
        "seqnum" => Some(ExecMode::Pim(OrderingMode::SeqNum)),
        _ => None,
    }
}

fn parse_ts(denom: &str) -> Option<TsSize> {
    match denom {
        "16" => Some(TsSize::Sixteenth),
        "8" => Some(TsSize::Eighth),
        "4" => Some(TsSize::Quarter),
        "2" => Some(TsSize::Half),
        _ => None,
    }
}

fn cmd_list() -> ExitCode {
    println!("workloads (paper Table 2):");
    for id in WorkloadId::ALL {
        let m = id.meta();
        println!(
            "  {:<8} {:<40} C:M {:<6} {:?}",
            m.name, m.description, m.ratio, m.suite
        );
    }
    ExitCode::SUCCESS
}

fn cmd_taxonomy() -> ExitCode {
    use orderlight_suite::core::taxonomy::{literature, PimClass};
    for class in [PimClass::CGO_FGA, PimClass::CGO_CGA, PimClass::FGO_CGA, PimClass::FGO_FGA] {
        let names: Vec<&str> =
            literature().iter().filter(|d| d.class == class).map(|d| d.name).collect();
        println!("{class}: {}", names.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut workload = WorkloadId::Add;
    let mut mode = ExecMode::Pim(OrderingMode::OrderLight);
    let mut ts = TsSize::Eighth;
    let mut bmf = 16u32;
    let mut data_kb = 256u64;
    let mut credits = 32u32;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        let ok = match flag.as_str() {
            "--workload" | "-w" => match parse_workload(value) {
                Some(w) => {
                    workload = w;
                    true
                }
                None => false,
            },
            "--mode" | "-m" => match parse_mode(value) {
                Some(m) => {
                    mode = m;
                    true
                }
                None => false,
            },
            "--ts" => match parse_ts(value) {
                Some(t) => {
                    ts = t;
                    true
                }
                None => false,
            },
            "--bmf" => value.parse().map(|v| bmf = v).is_ok(),
            "--data-kb" => value.parse().map(|v| data_kb = v).is_ok(),
            "--credits" => value.parse().map(|v| credits = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        };
        if !ok {
            eprintln!("invalid value '{value}' for {flag}");
            return usage();
        }
    }

    let mut exp = ExperimentConfig::new(workload, mode);
    exp.ts_size = ts;
    exp.bmf = bmf;
    exp.data_bytes_per_channel = data_kb * 1024;
    exp.seq_credits = credits;
    apply_sm_policy(&mut exp);
    println!(
        "running {workload} mode={mode} ts={ts} bmf={bmf}x data={data_kb}KiB/structure/channel ..."
    );
    match run_experiment(exp) {
        Ok(stats) => {
            println!("  execution time        : {:.4} ms", stats.exec_time_ms);
            println!("  core cycles           : {}", stats.core_cycles);
            println!("  core stall cycles     : {}", stats.stall_cycles());
            println!("  PIM command bandwidth : {:.3} GC/s", stats.command_bandwidth_gcs);
            println!("  PIM data bandwidth    : {:.0} GB/s", stats.data_bandwidth_gbs);
            println!(
                "  ordering primitives   : {} ({:.3} per PIM instruction)",
                stats.sm.fences + stats.sm.orderlights,
                stats.primitives_per_pim_instr
            );
            if stats.sm.fences > 0 {
                println!(
                    "  wait cycles per fence : {:.0}",
                    stats.wait_cycles_per_fence()
                );
            }
            if stats.is_correct() {
                println!(
                    "  verification          : PASS ({} output stripes)",
                    stats.verified_matches
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "  verification          : FAIL ({} of {} stripes wrong)",
                    stats.verified_mismatches,
                    stats.verified_matches + stats.verified_mismatches
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("list") => cmd_list(),
        Some("taxonomy") => cmd_taxonomy(),
        _ => usage(),
    }
}
