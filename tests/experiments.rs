//! Integration coverage for every canned experiment runner — the same
//! code paths the figure-regeneration binaries drive, at a reduced job
//! size, with the paper's qualitative claims asserted.

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::experiments::{
    ablation_arbitration, ablation_cpu_host, ablation_fence_scope, ablation_page_policy,
    ablation_refresh, ablation_scheduler, ablation_seqnum, fig05, fig10, fig11, fig12, fig13,
    table1,
};

const DATA: u64 = 32 * 1024;

#[test]
fn fig05_shape() {
    let rows = fig05(DATA).expect("runs");
    assert_eq!(rows.len(), 5, "NoFence + 4 fence TS points");
    assert!(!rows[0].stats.is_correct(), "unordered bar is incorrect");
    // Execution time falls monotonically with TS under fences.
    let times: Vec<f64> = rows[1..].iter().map(|p| p.stats.exec_time_ms).collect();
    assert!(times.windows(2).all(|w| w[1] < w[0]), "{times:?}");
    // Fence waits are in the hundreds of cycles.
    for p in &rows[1..] {
        assert!(p.stats.is_correct());
        let w = p.stats.wait_cycles_per_fence();
        assert!((200.0..2000.0).contains(&w), "wait {w}");
    }
}

#[test]
#[ignore = "tier 2: full Figure 10 sweep (~9 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig10_shape() {
    let rows = fig10(DATA).expect("runs");
    // 5 kernels x (1 GPU + 4 TS x 2 modes).
    assert_eq!(rows.len(), 5 * 9);
    for p in &rows {
        assert!(p.stats.is_correct(), "{} {} {}", p.workload, p.ts, p.mode);
    }
    // OrderLight beats fence at every point.
    for w in ["Scale", "Copy", "Daxpy", "Triad", "Add"] {
        for ts in ["1/16 RB", "1/8 RB", "1/4 RB", "1/2 RB"] {
            let get = |mode: &str| {
                rows.iter()
                    .find(|p| p.workload == w && p.ts == ts && p.mode == mode)
                    .map(|p| p.stats.exec_time_ms)
                    .expect("point exists")
            };
            assert!(get("pim-orderlight") < get("pim-fence"), "{w} {ts}: OrderLight must win");
        }
    }
}

#[test]
fn fig11_exact() {
    let f = fig11();
    assert_eq!(f.analytic_window, 44);
    assert_eq!(f.simulated_window, 44);
    assert_eq!(f.writes_per_window, 8);
    assert!((f.peak_command_gcs - 2.47).abs() < 0.01);
}

#[test]
#[ignore = "tier 2: full Figure 12 sweep (~12 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig12_shape() {
    let rows = fig12(DATA).expect("runs");
    assert_eq!(rows.len(), 7 * 4 * 2);
    for p in &rows {
        assert!(p.stats.is_correct(), "{} {} {}", p.workload, p.ts, p.mode);
    }
    // The Gen_Fil primitive rate is identical at every TS; the
    // elementwise BN_Fwd rate halves per doubling.
    let prim = |w: &str, ts: &str| {
        rows.iter()
            .find(|p| p.workload == w && p.ts == ts && p.mode == "pim-orderlight")
            .map(|p| p.stats.primitives_per_pim_instr)
            .expect("point")
    };
    assert!((prim("Gen_Fil", "1/16 RB") - prim("Gen_Fil", "1/2 RB")).abs() < 1e-9);
    assert!(prim("BN_Fwd", "1/16 RB") > 3.0 * prim("BN_Fwd", "1/2 RB"));
    // FC's rate is nearly flat (reduction chunking).
    assert!(prim("FC", "1/2 RB") > 0.6 * prim("FC", "1/16 RB"));
}

#[test]
#[ignore = "tier 2: full Figure 13 sweep (~10 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig13_shape() {
    let rows = fig13(DATA).expect("runs");
    assert_eq!(rows.len(), 3 * 4 * 2);
    for p in &rows {
        assert!(p.stats.is_correct());
    }
    // For the same TS, lower BMF means more commands for the same job,
    // so fence execution time grows as BMF shrinks.
    let fence_ms = |bmf: u32| {
        rows.iter()
            .find(|p| p.bmf == bmf && p.ts == "1/8 RB" && p.mode == "pim-fence")
            .map(|p| p.stats.exec_time_ms)
            .expect("point")
    };
    assert!(fence_ms(4) > fence_ms(8));
    assert!(fence_ms(8) > fence_ms(16));
}

#[test]
fn arbitration_ablation_orders_of_magnitude() {
    let a = ablation_arbitration(DATA).expect("runs");
    assert!(a.fga_mean_host_latency > 0.0);
    assert!(
        a.cga_host_wait_cycles as f64 > 20.0 * a.fga_mean_host_latency,
        "coarse arbitration must cost orders of magnitude more"
    );
}

#[test]
fn fence_scope_ablation_trades_cost_for_guarantee() {
    let a = ablation_fence_scope(DATA, TsSize::Eighth).expect("runs");
    assert!(a.dram_issue_correct, "issue-to-DRAM fence is always safe");
    assert!(a.l2_ack_wait < a.dram_issue_wait, "the serialization-point fence must be cheaper");
    assert!(a.l2_ack_ms < a.dram_issue_ms);
}

#[test]
fn seqnum_ablation_converges_to_orderlight() {
    let rows = ablation_seqnum(DATA, TsSize::Eighth).expect("runs");
    assert_eq!(rows[0].label, "orderlight");
    for r in &rows {
        assert!(r.correct, "{}", r.label);
    }
    let ol = rows[0].exec_time_ms;
    let b4 = rows[1].exec_time_ms;
    let b64 = rows[5].exec_time_ms;
    assert!(b4 > 3.0 * ol, "tiny buffers pay credit round trips");
    assert!(b64 < 1.6 * ol, "a big reorder buffer approaches OrderLight");
    assert!(
        rows[1].credit_wait_cycles > rows[5].credit_wait_cycles,
        "credit waits shrink with the buffer"
    );
}

#[test]
fn cpu_host_study_transfers() {
    let rows = ablation_cpu_host(DATA, TsSize::Eighth).expect("runs");
    assert!(rows.iter().all(|r| r.correct));
    let fence = &rows[0];
    let ol = &rows[1];
    assert!(
        fence.wait_per_fence > 100.0 && fence.wait_per_fence < 600.0,
        "CPU fences cost on the order of 100 cycles (paper Conclusion), got {}",
        fence.wait_per_fence
    );
    assert!(fence.exec_time_ms > 1.3 * ol.exec_time_ms, "OrderLight still wins");
}

#[test]
fn refresh_ablation_bounded_by_trfc_over_trefi() {
    let rows = ablation_refresh(DATA).expect("runs");
    assert!(rows.iter().all(|r| r.correct), "refresh never breaks ordering");
    let slowdown = rows[1].exec_time_ms / rows[0].exec_time_ms;
    assert!((1.0..1.15).contains(&slowdown), "refresh steals at most ~tRFC/tREFI: {slowdown}");
}

#[test]
fn scheduler_ablation_scan_depth_matters_for_host() {
    let rows = ablation_scheduler(32 * 1024).expect("runs");
    let host_ms =
        |label: &str| rows.iter().find(|r| r.label == label).map(|r| r.host_exec_ms).expect("row");
    assert!(
        host_ms("scan_depth=1") > 1.3 * host_ms("scan_depth=16"),
        "FCFS-degenerate scheduling must hurt the host stream"
    );
    // The ordered PIM stream is insensitive.
    let pim: Vec<f64> = rows.iter().map(|r| r.pim_command_gcs).collect();
    let spread =
        pim.iter().copied().fold(0.0f64, f64::max) - pim.iter().copied().fold(f64::MAX, f64::min);
    assert!(spread < 0.2, "ordered PIM stream should be knob-insensitive: {pim:?}");
}

#[test]
fn page_policy_is_a_noop_for_ordered_pim() {
    let rows = ablation_page_policy(DATA).expect("runs");
    // (Add, Open) vs (Add, Closed) within 5%.
    assert!((rows[0].exec_time_ms - rows[1].exec_time_ms).abs() < 0.05 * rows[0].exec_time_ms);
}

#[test]
fn table1_is_stable() {
    let rows = table1();
    assert!(rows.len() >= 13);
    assert!(rows.iter().any(|(k, v)| k == "Memory scheduler" && v == "FRFCFS"));
}
