//! Cross-crate tests of the tracing subsystem: attaching a sink must
//! not perturb the simulation, and the exported Chrome trace must be
//! well-formed, parseable JSON covering every event category.

use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::{run_experiment, run_experiment_traced};
use orderlight_suite::trace::json::{self, Value};
use orderlight_suite::trace::{ChromeTraceBuilder, EventCategory, RingSink, TraceEvent};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};
use std::collections::BTreeSet;
use std::sync::Arc;

fn small_exp(mode: OrderingMode) -> ExperimentConfig {
    let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(mode));
    exp.data_bytes_per_channel = 8 * 1024;
    exp
}

/// Tracing is observe-only: a run with a recording sink attached is
/// cycle-identical to the default NopSink run, down to every statistic.
#[test]
fn recording_sink_does_not_perturb_the_simulation() {
    for mode in [OrderingMode::OrderLight, OrderingMode::Fence] {
        let baseline = run_experiment(small_exp(mode)).expect("baseline drains");
        let ring = Arc::new(RingSink::new(1 << 22));
        let (traced, _clocks) =
            run_experiment_traced(small_exp(mode), ring.clone()).expect("traced drains");
        assert_eq!(baseline, traced, "{mode}: instrumented run diverged");
        assert!(!ring.is_empty(), "{mode}: the run must emit events");
        assert_eq!(ring.dropped(), 0, "{mode}: capacity must hold the whole run");
    }
}

/// A traced run covers all four event categories, and the Chrome export
/// round-trips through a JSON parser with the expected shape.
#[test]
fn chrome_export_round_trips_with_full_category_coverage() {
    let ring = Arc::new(RingSink::new(1 << 22));
    let (stats, clocks) =
        run_experiment_traced(small_exp(OrderingMode::Fence), ring.clone()).expect("drains");
    assert!(stats.is_correct());
    let events = ring.events();

    let covered: BTreeSet<EventCategory> = events.iter().map(TraceEvent::category).collect();
    for cat in EventCategory::ALL {
        assert!(covered.contains(&cat), "category {cat:?} missing from the trace");
    }

    let text = ChromeTraceBuilder::new(clocks).build(&events);
    let doc = json::parse(&text).expect("exporter emits valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms"),
        "Perfetto time-unit hint"
    );
    let rows = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(rows.len() >= events.len(), "payload rows plus metadata");

    // Every payload row (non-metadata) carries the required fields and a
    // known category; timestamps are finite and non-negative.
    let mut cats = BTreeSet::new();
    let mut spans: i64 = 0;
    for row in rows {
        let ph = row.get("ph").and_then(Value::as_str).expect("phase");
        if ph == "M" {
            continue;
        }
        let cat = row.get("cat").and_then(Value::as_str).expect("category");
        cats.insert(cat.to_string());
        assert!(EventCategory::ALL.iter().any(|c| c.name() == cat), "unknown category {cat}");
        let ts = row.get("ts").and_then(Value::as_f64).expect("timestamp");
        assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
        match ph {
            "B" => spans += 1,
            "E" => spans -= 1,
            "i" | "X" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
        assert!(spans >= 0, "E before matching B");
    }
    assert_eq!(spans, 0, "every B has a matching E");
    assert!(cats.len() >= 4, "expected >=4 categories in the export, got {cats:?}");
}

/// Fence-mode and OrderLight-mode traces differ in the expected
/// direction: fences produce stall spans, OrderLight produces packet
/// lifecycle events instead.
#[test]
fn trace_contents_distinguish_the_ordering_primitives() {
    let run = |mode| {
        let ring = Arc::new(RingSink::new(1 << 22));
        run_experiment_traced(small_exp(mode), ring.clone()).expect("drains");
        ring.events()
    };
    let fence = run(OrderingMode::Fence);
    let ol = run(OrderingMode::OrderLight);

    let stalls = |evs: &[TraceEvent]| {
        evs.iter().filter(|e| matches!(e, TraceEvent::FenceStallBegin { .. })).count()
    };
    let merges = |evs: &[TraceEvent]| {
        evs.iter().filter(|e| matches!(e, TraceEvent::PacketMerged { .. })).count()
    };
    assert!(stalls(&fence) > 0, "fence runs stall");
    assert_eq!(stalls(&ol), 0, "OrderLight never stalls the warp");
    assert!(merges(&ol) > 0, "OrderLight packets merge at the controller");
    assert_eq!(merges(&fence), 0, "fence runs carry no packets");

    // Packet conservation: every created packet is enqueued and merged
    // exactly once per channel copy set.
    let created = ol.iter().filter(|e| matches!(e, TraceEvent::PacketCreated { .. })).count();
    assert_eq!(merges(&ol), created, "every packet created must merge");
}
