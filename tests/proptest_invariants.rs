//! Randomized tests over the core data structures and invariants:
//! packet codec, copy-and-merge protocol, address mapping, ALU/golden
//! agreement, and end-to-end correctness on randomized design points.
//!
//! Inputs come from the in-tree deterministic PRNG
//! ([`orderlight_suite::core::rng::Rng`]) so every run exercises the
//! same cases.

use orderlight_suite::core::fsm::{diverge, MergeFsm};
use orderlight_suite::core::mapping::AddressMapping;
use orderlight_suite::core::message::Marker;
use orderlight_suite::core::packet::OrderLightPacket;
use orderlight_suite::core::rng::Rng;
use orderlight_suite::core::types::{Addr, ChannelId, MemGroupId, Stripe};
use orderlight_suite::core::AluOp;
use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::apply_sm_policy;
use orderlight_suite::sim::System;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// The OrderLight packet wire format round-trips for every field
/// combination, including multi-group extensions.
#[test]
fn packet_roundtrip() {
    let mut rng = Rng::new(0xc0de);
    for _ in 0..256 {
        let ch = rng.gen_range(16) as u8;
        let g = rng.gen_range(16) as u8;
        let n = rng.next_u64() as u32;
        let extras: Vec<MemGroupId> =
            (0..rng.gen_index(3)).map(|_| MemGroupId(rng.gen_range(16) as u8)).collect();
        let pkt = OrderLightPacket::with_groups(ChannelId(ch), MemGroupId(g), &extras, n).unwrap();
        assert_eq!(OrderLightPacket::decode(pkt.encode()).unwrap(), pkt);
    }
}

/// Under any interleaving of copies from any number of markers, each
/// marker merges exactly once, and only after all of its copies
/// arrived.
#[test]
fn merge_fires_exactly_once_under_any_interleaving() {
    let mut rng = Rng::new(0xf5a1);
    for _ in 0..128 {
        let n_markers = 1 + rng.gen_index(5);
        let paths = 2 + rng.gen_index(3);
        let mut copies = Vec::new();
        for m in 0..n_markers {
            let marker =
                Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), m as u32));
            for c in diverge(marker, paths) {
                copies.push(c);
            }
        }
        rng.shuffle(&mut copies);
        let mut fsm = MergeFsm::new();
        let mut merged = 0;
        for c in &copies {
            if fsm.on_copy(c).is_some() {
                merged += 1;
            }
        }
        assert_eq!(merged, n_markers);
        assert_eq!(fsm.pending(), 0);
    }
}

/// Address mapping: decode is consistent with compose/channel_of for
/// arbitrary addresses, and every field stays in range.
#[test]
fn mapping_decode_in_range() {
    let mut rng = Rng::new(0xadd5);
    let m = AddressMapping::hbm_default();
    for _ in 0..512 {
        let addr = rng.gen_range(1 << 40);
        let loc = m.decode(Addr(addr));
        assert!(usize::from(loc.channel.0) < m.channels());
        assert!(usize::from(loc.bank.0) < m.banks());
        assert!(u64::from(loc.col) < m.stripes_per_row());
        assert_eq!(loc.channel, m.channel_of(Addr(addr)));
        // compose(channel_offset) restores the address.
        let back = m.compose(loc.channel, m.channel_offset(Addr(addr)));
        assert_eq!(back, Addr(addr));
    }
}

/// Stripe-wide ALU application equals lane-by-lane application for
/// every op and operand pattern (the PIM unit, host SIMD and golden
/// model all rely on this).
#[test]
fn alu_stripe_equals_lanes() {
    let mut rng = Rng::new(0xa1fa);
    for _ in 0..256 {
        let mut acc = [0u32; 8];
        let mut mem = [0u32; 8];
        for i in 0..8 {
            acc[i] = rng.next_u64() as u32;
            mem[i] = rng.next_u64() as u32;
        }
        let imm = rng.next_u64() as u32;
        let op = [
            AluOp::Mov,
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Min,
            AluOp::Max,
            AluOp::Xor,
            AluOp::AxpyImm(imm),
            AluOp::ScaleImm(imm),
            AluOp::AddImm(imm),
            AluOp::Hamming,
        ][rng.gen_index(11)];
        let out = op.apply(Stripe(acc), Stripe(mem));
        for i in 0..8 {
            assert_eq!(out.0[i], op.apply_lane(acc[i], mem[i]));
        }
    }
}

/// End-to-end: a randomized design point (workload, TS size, job size,
/// ordering primitive) always produces bit-correct results and
/// consistent counters.
#[test]
fn randomized_design_points_verify() {
    let mut rng = Rng::new(0xe2ee);
    for _ in 0..6 {
        let workload = WorkloadId::ALL[rng.gen_index(WorkloadId::ALL.len())];
        let ts = TsSize::ALL[rng.gen_index(TsSize::ALL.len())];
        let mode = if rng.gen_bool(1, 2) { OrderingMode::Fence } else { OrderingMode::OrderLight };
        let kb = 2 + rng.gen_range(10);
        let mut exp = ExperimentConfig::new(workload, ExecMode::Pim(mode));
        exp.ts_size = ts;
        exp.data_bytes_per_channel = kb * 1024;
        apply_sm_policy(&mut exp);
        let mut sys = System::build(exp).expect("valid");
        let stats = sys.run(400_000_000).expect("drains");
        assert!(
            stats.is_correct(),
            "{} {} {}: {} mismatches",
            workload,
            ts,
            mode,
            stats.verified_mismatches
        );
        assert_eq!(stats.mc.sanity_violations, 0);
        // Conservation: every PIM instruction issued by the SMs is
        // eventually issued by a controller.
        assert_eq!(stats.sm.pim_issued, stats.mc.pim_commands);
    }
}
