//! Property-based tests over the core data structures and invariants:
//! packet codec, copy-and-merge protocol, address mapping, ALU/golden
//! agreement, and end-to-end correctness on randomized design points.

use orderlight_suite::core::fsm::{diverge, MergeFsm};
use orderlight_suite::core::mapping::AddressMapping;
use orderlight_suite::core::message::Marker;
use orderlight_suite::core::packet::OrderLightPacket;
use orderlight_suite::core::types::{Addr, ChannelId, MemGroupId, Stripe};
use orderlight_suite::core::AluOp;
use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::apply_sm_policy;
use orderlight_suite::sim::System;
use orderlight_suite::workloads::{OrderingMode, WorkloadId};
use proptest::prelude::*;

proptest! {
    /// The OrderLight packet wire format round-trips for every field
    /// combination, including multi-group extensions.
    #[test]
    fn packet_roundtrip(ch in 0u8..16, g in 0u8..16, n in any::<u32>(), extra in proptest::collection::vec(0u8..16, 0..=2)) {
        let extras: Vec<MemGroupId> = extra.into_iter().map(MemGroupId).collect();
        let pkt = OrderLightPacket::with_groups(ChannelId(ch), MemGroupId(g), &extras, n).unwrap();
        prop_assert_eq!(OrderLightPacket::decode(pkt.encode()).unwrap(), pkt);
    }

    /// Under any interleaving of copies from any number of markers, each
    /// marker merges exactly once, and only after all of its copies
    /// arrived.
    #[test]
    fn merge_fires_exactly_once_under_any_interleaving(
        n_markers in 1usize..6,
        paths in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut copies = Vec::new();
        for m in 0..n_markers {
            let marker = Marker::OrderLight(OrderLightPacket::new(
                ChannelId(0),
                MemGroupId(0),
                m as u32,
            ));
            for c in diverge(marker, paths) {
                copies.push(c);
            }
        }
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..copies.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            copies.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut fsm = MergeFsm::new();
        let mut merged = 0;
        for c in &copies {
            if fsm.on_copy(c).is_some() {
                merged += 1;
            }
        }
        prop_assert_eq!(merged, n_markers);
        prop_assert_eq!(fsm.pending(), 0);
    }

    /// Address mapping: decode is consistent with compose/channel_of for
    /// arbitrary addresses, and every field stays in range.
    #[test]
    fn mapping_decode_in_range(addr in 0u64..(1 << 40)) {
        let m = AddressMapping::hbm_default();
        let loc = m.decode(Addr(addr));
        prop_assert!(usize::from(loc.channel.0) < m.channels());
        prop_assert!(usize::from(loc.bank.0) < m.banks());
        prop_assert!(u64::from(loc.col) < m.stripes_per_row());
        prop_assert_eq!(loc.channel, m.channel_of(Addr(addr)));
        // compose(channel_offset) restores the address.
        let back = m.compose(loc.channel, m.channel_offset(Addr(addr)));
        prop_assert_eq!(back, Addr(addr));
    }

    /// Stripe-wide ALU application equals lane-by-lane application for
    /// every op and operand pattern (the PIM unit, host SIMD and golden
    /// model all rely on this).
    #[test]
    fn alu_stripe_equals_lanes(acc in any::<[u32; 8]>(), mem in any::<[u32; 8]>(), op_idx in 0usize..11, imm in any::<u32>()) {
        let op = [
            AluOp::Mov, AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Min, AluOp::Max,
            AluOp::Xor, AluOp::AxpyImm(imm), AluOp::ScaleImm(imm), AluOp::AddImm(imm),
            AluOp::Hamming,
        ][op_idx];
        let out = op.apply(Stripe(acc), Stripe(mem));
        for i in 0..8 {
            prop_assert_eq!(out.0[i], op.apply_lane(acc[i], mem[i]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// End-to-end: a randomized design point (workload, TS size, job
    /// size, ordering primitive) always produces bit-correct results and
    /// consistent counters.
    #[test]
    fn randomized_design_points_verify(
        wl_idx in 0usize..12,
        ts_idx in 0usize..4,
        kb in 2u64..12,
        use_fence in any::<bool>(),
    ) {
        let workload = WorkloadId::ALL[wl_idx];
        let ts = TsSize::ALL[ts_idx];
        let mode = if use_fence { OrderingMode::Fence } else { OrderingMode::OrderLight };
        let mut exp = ExperimentConfig::new(workload, ExecMode::Pim(mode));
        exp.ts_size = ts;
        exp.data_bytes_per_channel = kb * 1024;
        apply_sm_policy(&mut exp);
        let mut sys = System::build(exp).expect("valid");
        let stats = sys.run(400_000_000).expect("drains");
        prop_assert!(stats.is_correct(), "{} {} {}: {} mismatches",
            workload, ts, mode, stats.verified_mismatches);
        prop_assert_eq!(stats.mc.sanity_violations, 0);
        // Conservation: every PIM instruction issued by the SMs is
        // eventually issued by a controller.
        prop_assert_eq!(stats.sm.pim_issued, stats.mc.pim_commands);
    }
}
