//! Cross-crate integration tests: the whole stack (GPU → pipes →
//! controllers → DRAM + PIM) on the paper's workload suite.

use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::apply_sm_policy;
use orderlight_suite::sim::{RunStats, System};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

fn run(workload: WorkloadId, mode: ExecMode, ts: TsSize, data: u64) -> RunStats {
    let mut exp = ExperimentConfig::new(workload, mode);
    exp.ts_size = ts;
    exp.data_bytes_per_channel = data;
    apply_sm_policy(&mut exp);
    let mut sys = System::build(exp).expect("valid experiment");
    sys.run(400_000_000).expect("system drains")
}

#[test]
fn every_workload_is_correct_under_orderlight() {
    for wl in WorkloadId::ALL {
        let stats = run(wl, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 16 * 1024);
        assert!(
            stats.is_correct(),
            "{wl}: {} mismatches of {} checked",
            stats.verified_mismatches,
            stats.verified_matches + stats.verified_mismatches
        );
        assert_eq!(stats.mc.sanity_violations, 0, "{wl}: packet numbers must be monotonic");
        assert_eq!(stats.sm.fences, 0, "{wl}: OrderLight mode uses no fences");
        assert!(stats.sm.orderlights > 0, "{wl}: ordering primitives were issued");
        assert_eq!(
            stats.mc.ol_packets, stats.sm.orderlights,
            "{wl}: every packet issued must merge at a controller"
        );
    }
}

#[test]
fn every_workload_is_correct_under_fences() {
    for wl in WorkloadId::ALL {
        let stats = run(wl, ExecMode::Pim(OrderingMode::Fence), TsSize::Quarter, 8 * 1024);
        assert!(stats.is_correct(), "{wl} under fences");
        assert_eq!(
            stats.mc.fence_acks, stats.sm.fences,
            "{wl}: every fence must be acknowledged exactly once"
        );
        assert!(
            stats.wait_cycles_per_fence() > 100.0,
            "{wl}: fences pay a core-to-memory round trip"
        );
    }
}

#[test]
fn multi_phase_kernels_corrupt_without_ordering() {
    // Every kernel that reuses TS slots across phases/tiles must fail
    // when the FR-FCFS scheduler is left free to reorder.
    for wl in [WorkloadId::Add, WorkloadId::Triad, WorkloadId::Daxpy, WorkloadId::BnFwd] {
        let stats = run(wl, ExecMode::Pim(OrderingMode::None), TsSize::Eighth, 16 * 1024);
        assert!(
            stats.verified_mismatches > 0,
            "{wl}: unordered execution must be functionally incorrect (paper Figure 5)"
        );
    }
}

#[test]
fn gpu_baseline_is_correct_for_elementwise_kernels() {
    for wl in [WorkloadId::Scale, WorkloadId::Copy, WorkloadId::Add] {
        let stats = run(wl, ExecMode::Gpu, TsSize::Eighth, 8 * 1024);
        assert!(stats.is_correct(), "{wl} on the conventional GPU path");
        assert_eq!(stats.mc.pim_commands, 0);
        assert!(stats.sm.loads > 0 && stats.sm.computes + stats.sm.stores > 0);
    }
}

#[test]
fn orderlight_beats_fence_beats_nothing_useful() {
    let ol =
        run(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 32 * 1024);
    let fence = run(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence), TsSize::Eighth, 32 * 1024);
    assert!(
        fence.exec_time_ms > 2.0 * ol.exec_time_ms,
        "fence {:.4} ms vs OrderLight {:.4} ms",
        fence.exec_time_ms,
        ol.exec_time_ms
    );
    assert!(
        fence.command_bandwidth_gcs < ol.command_bandwidth_gcs,
        "ordering stalls must throttle command bandwidth"
    );
    // Stall-cycle structure mirrors Figure 10b: fences dominate the
    // baseline's stalls; OrderLight's waits are collector-drain only.
    assert!(fence.sm.fence_stall_cycles > 10 * ol.sm.ol_wait_cycles);
}

#[test]
fn bigger_ts_means_fewer_primitives_and_more_bandwidth() {
    let mut last_prim = f64::MAX;
    let mut last_bw = 0.0;
    for ts in [TsSize::Sixteenth, TsSize::Eighth, TsSize::Quarter, TsSize::Half] {
        let stats = run(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight), ts, 32 * 1024);
        assert!(
            stats.primitives_per_pim_instr < last_prim,
            "primitives/instruction must fall with TS"
        );
        assert!(stats.command_bandwidth_gcs > last_bw, "command bandwidth must rise with TS");
        last_prim = stats.primitives_per_pim_instr;
        last_bw = stats.command_bandwidth_gcs;
    }
}

#[test]
fn genfil_primitive_rate_is_ts_invariant() {
    let at = |ts| {
        run(WorkloadId::GenFil, ExecMode::Pim(OrderingMode::OrderLight), ts, 8 * 1024)
            .primitives_per_pim_instr
    };
    let small = at(TsSize::Sixteenth);
    let large = at(TsSize::Half);
    assert!(
        (small - large).abs() < 1e-9,
        "the 128 B probe granularity pins Gen_Fil's ordering rate"
    );
}

#[test]
fn data_bandwidth_is_command_bandwidth_times_bmf() {
    // PIM data bandwidth reflects the product of command bandwidth and
    // the bandwidth multiplication factor (paper Section 6, metrics).
    let stats =
        run(WorkloadId::Copy, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 16 * 1024);
    let dram_cmds = stats.mc.col_reads + stats.mc.col_writes;
    assert_eq!(stats.pim_data_bytes, dram_cmds * 32 * 16, "BMF=16 scaling");
}

#[test]
fn bmf_sweep_shifts_the_burden() {
    // Lower BMF means more commands for the same job: fence suffers
    // more, so the OrderLight advantage grows (paper Figure 13).
    let ratio = |bmf: u32| {
        let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
        exp.bmf = bmf;
        exp.data_bytes_per_channel = 64 * 1024;
        apply_sm_policy(&mut exp);
        let fence = System::build(exp.clone()).unwrap().run(600_000_000).unwrap().exec_time_ms;
        exp.mode = ExecMode::Pim(OrderingMode::OrderLight);
        apply_sm_policy(&mut exp);
        let ol = System::build(exp).unwrap().run(600_000_000).unwrap().exec_time_ms;
        fence / ol
    };
    let low_bmf = ratio(4);
    let high_bmf = ratio(16);
    assert!(
        low_bmf > high_bmf * 0.8,
        "fence burden should not shrink at low BMF: 4x -> {low_bmf:.2}, 16x -> {high_bmf:.2}"
    );
}

#[test]
fn seqnum_baseline_is_correct_and_credit_bound() {
    // The Kim et al. sequence-number baseline verifies at every buffer
    // size, and its performance is monotone in the credit budget.
    let at = |credits: u32| {
        let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::SeqNum));
        exp.data_bytes_per_channel = 16 * 1024;
        exp.seq_credits = credits;
        apply_sm_policy(&mut exp);
        let stats = System::build(exp).unwrap().run(400_000_000).unwrap();
        assert!(stats.is_correct(), "seqnum B={credits}");
        assert!(stats.sm.credit_wait_cycles > 0, "credits must bind at B={credits}");
        stats.exec_time_ms
    };
    let small = at(4);
    let large = at(32);
    assert!(
        small > 1.5 * large,
        "small credit buffers must pay round trips: B=4 {small:.4} ms vs B=32 {large:.4} ms"
    );
    // OrderLight needs no credits and beats even the large buffer.
    let ol =
        run(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 16 * 1024);
    assert!(ol.exec_time_ms <= large * 1.1);
    assert_eq!(ol.sm.credit_wait_cycles, 0);
}

#[test]
fn seqnum_handles_irregular_kernels() {
    for wl in [WorkloadId::Hist, WorkloadId::GenFil, WorkloadId::Kmeans] {
        let stats = run(wl, ExecMode::Pim(OrderingMode::SeqNum), TsSize::Eighth, 8 * 1024);
        assert!(stats.is_correct(), "{wl} under sequence numbers");
    }
}

#[test]
fn determinism_identical_runs_identical_stats() {
    let a =
        run(WorkloadId::Hist, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 8 * 1024);
    let b =
        run(WorkloadId::Hist, ExecMode::Pim(OrderingMode::OrderLight), TsSize::Eighth, 8 * 1024);
    assert_eq!(a, b, "the simulator must be bit-deterministic");
}
