//! Differential contract of the two simulation cores: the event-driven
//! time-skip core ([`SimCore::Event`]) is **bit-identical** to the
//! dense per-cycle core ([`SimCore::Cycle`]) — the same `RunStats`
//! (including every stall counter and the exact drain cycle), the same
//! per-channel controller statistics, the same clock positions, and the
//! same final DRAM bytes in every materialised row of every channel.
//!
//! The Figure 5 sweep (fence-heavy, the event core's best case) plus a
//! batch of SplitMix64-randomised small configurations — with refresh
//! both off and on — stay in the fast tier; the larger Figure 10/12
//! sweeps are tier 2 (`#[ignore]`, run with `--include-ignored` or
//! `ORDERLIGHT_TIER2=1 ./ci.sh`). `ci.sh` additionally runs the whole
//! tier-1 suite under `ORDERLIGHT_CORE=cycle` and
//! `ORDERLIGHT_CORE=event`, and `orderlight bench` cross-checks the
//! cores (and times them) over every figure in release mode.

use orderlight_suite::core::rng::Rng;
use orderlight_suite::hbm::RefreshParams;
use orderlight_suite::pim::TsSize;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::{
    apply_sm_policy, fig05_points, fig10_points, fig12_points, JobSpec,
};
use orderlight_suite::sim::{SimCore, System};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// Matches `parallel_equivalence.rs`: small enough for sub-second
/// figure sweeps, large enough to stream multiple row-buffer tiles.
const DATA: u64 = 8 * 1024;

const BUDGET: u64 = 50_000_000;

/// Runs `exp` once per core and asserts every observable is identical.
fn assert_cores_agree(label: &str, exp: &ExperimentConfig) {
    let run = |core: SimCore| {
        let mut sys = System::build(exp.clone()).expect("builds");
        let stats = sys.run_with(BUDGET, core).expect("drains within budget");
        (stats, sys)
    };
    let (cycle_stats, cycle_sys) = run(SimCore::Cycle);
    let (event_stats, event_sys) = run(SimCore::Event);

    assert_eq!(event_stats.core_cycles, cycle_stats.core_cycles, "{label}: drain cycle must match");
    assert_eq!(event_stats, cycle_stats, "{label}: RunStats must be bit-identical");
    assert_eq!(
        event_sys.channel_stats(),
        cycle_sys.channel_stats(),
        "{label}: per-channel controller stats must match"
    );
    assert_eq!(event_sys.now(), cycle_sys.now(), "{label}: core clock position");
    assert_eq!(event_sys.mem_now(), cycle_sys.mem_now(), "{label}: memory clock position");
    for (ch, (cm, em)) in cycle_sys.controllers().iter().zip(event_sys.controllers()).enumerate() {
        assert_eq!(
            em.channel().store().rows_sorted(),
            cm.channel().store().rows_sorted(),
            "{label}: channel {ch} final DRAM contents must be byte-identical"
        );
    }
}

fn exp_of(spec: &JobSpec) -> ExperimentConfig {
    let mut exp = ExperimentConfig::new(spec.workload, spec.mode);
    exp.ts_size = spec.ts;
    exp.bmf = spec.bmf;
    exp.data_bytes_per_channel = spec.data_bytes_per_channel;
    apply_sm_policy(&mut exp);
    exp
}

fn assert_figure_agrees(figure: &str, specs: &[JobSpec]) {
    for spec in specs {
        let label = format!("{figure} {} {} {}", spec.workload, spec.mode, spec.ts);
        assert_cores_agree(&label, &exp_of(spec));
    }
}

#[test]
fn fig05_cores_agree() {
    assert_figure_agrees("fig05", &fig05_points(DATA));
}

#[test]
#[ignore = "tier 2: full Figure 10 sweep per core (~16 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig10_cores_agree() {
    assert_figure_agrees("fig10", &fig10_points(DATA));
}

#[test]
#[ignore = "tier 2: full Figure 12 sweep per core (~26 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig12_cores_agree() {
    assert_figure_agrees("fig12", &fig12_points(DATA));
}

/// Randomised configurations: workload, ordering mode, TS size and data
/// size drawn from a fixed-seed SplitMix64 stream, each tried with
/// refresh off and with HBM2-rate all-bank refresh. Refresh exercises
/// the one future-dated memory-domain horizon (the idle controller's
/// refresh trigger), which the figure sweeps leave off.
#[test]
fn randomized_configs_cores_agree() {
    const WORKLOADS: [WorkloadId; 5] = [
        WorkloadId::Add,
        WorkloadId::Daxpy,
        WorkloadId::Scale,
        WorkloadId::Copy,
        WorkloadId::Triad,
    ];
    const MODES: [OrderingMode; 4] =
        [OrderingMode::OrderLight, OrderingMode::Fence, OrderingMode::SeqNum, OrderingMode::None];
    const TS: [TsSize; 4] = [TsSize::Sixteenth, TsSize::Eighth, TsSize::Quarter, TsSize::Half];

    let mut rng = Rng::new(0x0e5e_0c0d_e201_1001);
    let mut pick = |n: usize| (rng.next_u64() % n as u64) as usize;
    for i in 0..6 {
        let workload = WORKLOADS[pick(WORKLOADS.len())];
        let mode = MODES[pick(MODES.len())];
        let ts = TS[pick(TS.len())];
        let data = [2u64, 4, 8][pick(3)] * 1024;
        let spec = JobSpec {
            workload,
            ts,
            mode: ExecMode::Pim(mode),
            bmf: 16,
            data_bytes_per_channel: data,
        };
        for refresh in [None, Some(RefreshParams::hbm2())] {
            let mut exp = exp_of(&spec);
            exp.system.refresh = refresh;
            let label =
                format!("random[{i}] {workload} {mode} {ts} {data}B refresh={}", refresh.is_some());
            assert_cores_agree(&label, &exp);
        }
    }
}

/// The cycle-budget error is part of the contract too: both cores must
/// fail at the same cycle with the same message when the budget is too
/// small.
#[test]
fn budget_error_is_core_independent() {
    let spec =
        JobSpec::new(WorkloadId::Add, TsSize::Eighth, ExecMode::Pim(OrderingMode::Fence), DATA);
    let err_of = |core: SimCore| {
        let mut sys = System::build(exp_of(&spec)).expect("builds");
        sys.run_with(1_000, core).expect_err("budget too small")
    };
    let cycle_err = err_of(SimCore::Cycle);
    let event_err = err_of(SimCore::Event);
    assert_eq!(event_err, cycle_err, "budget errors must be identical across cores");
    assert!(cycle_err.to_string().contains("not drained after 1000"));
}
