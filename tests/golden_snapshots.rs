//! Golden snapshots: exact, checked-in expected values for the
//! deterministic (non-sweep) artifacts — the Figure 11 DRAM timing
//! window and the Table 1 / Table 2 echoes. Any change to DRAM timing
//! parameters, system configuration defaults, or workload metadata
//! shows up here as a diff against the literal snapshot, so
//! re-baselining is always an explicit, reviewed act.

use orderlight_suite::sim::experiments::{fig11, table1};
use orderlight_suite::workloads::{Suite, WorkloadId};

/// Figure 11: the 44-cycle row window (tRCDW + 7·tCCD + tWP + tRP)
/// holds both analytically and on the simulated bank state machine,
/// giving the paper's 2.47 GC/s peak command bandwidth at 850 MHz over
/// 16 channels.
#[test]
fn fig11_window_snapshot() {
    let f = fig11();
    assert_eq!(f.analytic_window, 44, "analytic window");
    assert_eq!(f.simulated_window, 44, "simulated window");
    assert_eq!(f.writes_per_window, 8, "column writes per window");
    assert!((f.peak_command_gcs - 2.47).abs() < 0.01, "peak GC/s {}", f.peak_command_gcs);
}

/// Table 1: the full simulator configuration echo, row by row.
#[test]
fn table1_snapshot() {
    let expected: Vec<(&str, &str)> = vec![
        ("GPU model", "Volta Titan V (modelled)"),
        ("Number of SMs", "80"),
        ("Core frequency", "1200 MHz"),
        ("Memory model", "HBM"),
        ("Memory channels", "16"),
        ("Banks per channel", "16"),
        ("Memory frequency", "850 MHz"),
        ("DRAM bus width", "32B"),
        ("Memory scheduler", "FRFCFS"),
        ("R/W queue size", "64"),
        ("L2 queue size", "64"),
        ("Interconnect to L2 latency", "120 cycles"),
        ("L2 to DRAM scheduler latency", "100 cycles"),
        ("Memory timing", "CCD=1:RRD=3:RCDW=9:RAS=28:RP=12:CL=12:WL=2:CDLR=3:WR=10:CCDL=2:WTP=9"),
    ];
    let actual = table1();
    let actual: Vec<(&str, &str)> = actual.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    assert_eq!(actual, expected);
}

/// Table 2: the workload suite metadata plus the structural
/// compute:memory operation counts of each kernel specification
/// (`ops_per_stripe`), in Table 2 order.
#[test]
fn table2_snapshot() {
    #[rustfmt::skip]
    let expected: [(&str, &str, &str, bool, Suite, f64, f64); 12] = [
        ("Scale",   "a[i] = scalar*a[i]",                     "1:1",   false, Suite::Stream,  1.0, 1.0),
        ("Copy",    "b[i] = a[i]",                            "0:2",   true,  Suite::Stream,  0.0, 2.0),
        ("Daxpy",   "b[i] = b[i] + scalar*a[i]",              "2:2",   true,  Suite::Stream,  2.0, 2.0),
        ("Triad",   "c[i] = a[i] + scalar*b[i]",              "2:3",   true,  Suite::Stream,  2.0, 3.0),
        ("Add",     "c[i] = a[i] + b[i]",                     "1:3",   true,  Suite::Stream,  1.0, 3.0),
        ("BN_Fwd",  "Batch Normalization Forward Phase",      "7:3",   true,  Suite::App,     7.0, 3.0),
        ("BN_Bwd",  "Batch Normalization Backward Phase",     "14:6",  true,  Suite::App,    14.0, 6.0),
        ("FC",      "Fully Connected",                        "2:1",   false, Suite::App,     2.0, 1.0),
        ("KMeans",  "KMeans Clustering",                      "10:1",  false, Suite::App,    10.0, 1.0),
        ("SVM",     "Support Vector Machine",                 "2.5:2", true,  Suite::App,     2.5, 2.0),
        ("Hist",    "Histogram",                              "3:2",   true,  Suite::App,     3.0, 2.0),
        ("Gen_Fil", "Genomic Sequence Filtering (GRIM Algo)", "3:1",   false, Suite::App,     3.0, 1.0),
    ];
    assert_eq!(WorkloadId::ALL.len(), expected.len());
    for (id, exp) in WorkloadId::ALL.iter().zip(expected.iter()) {
        let m = id.meta();
        let (c, mem) = id.spec().ops_per_stripe();
        let actual = (m.name, m.description, m.ratio, m.multi_structure, m.suite, c, mem);
        assert_eq!(actual, *exp, "{id:?}");
    }
}
