//! Cross-core observability contract: a profiled run produces a
//! **byte-identical** [`ProfileReport`] whether it executes on the
//! dense cycle core or the event-driven time-skip core. This is the
//! acceptance gate for skip-boundary event synthesis — every
//! `NextEvent`-bearing component must emit, closed-form at skip
//! boundaries, the same run-length `CoreStall`, `PipeSample`,
//! `QueueSample`, and lifecycle records the dense core produces
//! cycle-by-cycle, so `StallProfiler` conservation holds bit-identically
//! under both cores.
//!
//! The fig05 sweep plus SplitMix64-randomised configurations (refresh
//! off and on) stay in the fast tier, with sampled fig10/fig12 points;
//! the full fig10/fig12 sweeps are tier 2 (`--include-ignored` /
//! `ORDERLIGHT_TIER2=1 ./ci.sh`).

use std::sync::Arc;

use orderlight_suite::core::rng::Rng;
use orderlight_suite::hbm::RefreshParams;
use orderlight_suite::pim::TsSize;
use orderlight_suite::profile::{profile_scenario, StallProfiler};
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::{
    apply_sm_policy, fig05_points, fig10_points, fig12_points, JobSpec,
};
use orderlight_suite::sim::{Scenario, ScenarioBuilder, SimCore};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// Matches `core_equivalence.rs`: small enough for sub-second sweeps,
/// large enough to stream multiple row-buffer tiles.
const DATA: u64 = 8 * 1024;

/// Profiles `scenario` once per core and asserts the serialized reports
/// are byte-identical, conservation holds on both, and each leg's
/// `RunStats` match (the cores are bit-identical with the sink live).
fn assert_reports_agree(label: &str, cycle: &Scenario, event: &Scenario) {
    let on_cycle = profile_scenario(cycle).expect("cycle-core profile runs");
    let on_event = profile_scenario(event).expect("event-core profile runs");
    assert!(on_cycle.is_conserved(), "{label} (cycle): {}", on_cycle.summary());
    assert!(on_event.is_conserved(), "{label} (event): {}", on_event.summary());
    assert_eq!(
        on_event.stats, on_cycle.stats,
        "{label}: RunStats must be bit-identical across cores with a live sink"
    );
    assert_eq!(
        on_event.report.to_json(),
        on_cycle.report.to_json(),
        "{label}: serialized ProfileReport must match byte for byte across cores"
    );
}

fn assert_spec_agrees(label: &str, spec: &JobSpec) {
    let build = |core: SimCore| spec.builder().core(core).build().expect("scenario builds");
    assert_reports_agree(label, &build(SimCore::Cycle), &build(SimCore::Event));
}

fn assert_figure_agrees(figure: &str, specs: &[JobSpec]) {
    for spec in specs {
        let label = format!("{figure} {} {} {}", spec.workload, spec.mode, spec.ts);
        assert_spec_agrees(&label, spec);
    }
}

#[test]
fn fig05_profile_reports_agree_across_cores() {
    assert_figure_agrees("fig05", &fig05_points(DATA));
}

#[test]
fn fig10_and_fig12_representative_reports_agree() {
    // Fast-tier coverage of the tier-2 sweeps: a spread of points from
    // each (different workloads, orderings and BMFs).
    for (figure, points) in [("fig10", fig10_points(DATA)), ("fig12", fig12_points(DATA))] {
        let sample: Vec<JobSpec> = points.iter().copied().step_by(9).collect();
        assert!(sample.len() >= 4, "{figure}: sample too thin");
        assert_figure_agrees(figure, &sample);
    }
}

#[test]
#[ignore = "tier 2: profiles the full Figure 10 sweep per core; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig10_profile_reports_agree_across_cores() {
    assert_figure_agrees("fig10", &fig10_points(DATA));
}

#[test]
#[ignore = "tier 2: profiles the full Figure 12 sweep per core; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig12_profile_reports_agree_across_cores() {
    assert_figure_agrees("fig12", &fig12_points(DATA));
}

/// Randomised configurations with refresh both off and on. Refresh
/// exercises the memory-domain horizon (skip windows must stop short of
/// a refresh trigger so `RefreshWindow` events fire on dense ticks),
/// which the figure sweeps leave off.
#[test]
fn randomized_configs_reports_agree_across_cores() {
    const WORKLOADS: [WorkloadId; 5] = [
        WorkloadId::Add,
        WorkloadId::Daxpy,
        WorkloadId::Scale,
        WorkloadId::Copy,
        WorkloadId::Triad,
    ];
    const MODES: [OrderingMode; 4] =
        [OrderingMode::OrderLight, OrderingMode::Fence, OrderingMode::SeqNum, OrderingMode::None];
    const TS: [TsSize; 4] = [TsSize::Sixteenth, TsSize::Eighth, TsSize::Quarter, TsSize::Half];

    let mut rng = Rng::new(0x0b5e_7fab_1e5a_0b1e);
    let mut pick = |n: usize| (rng.next_u64() % n as u64) as usize;
    for i in 0..4 {
        let workload = WORKLOADS[pick(WORKLOADS.len())];
        let mode = MODES[pick(MODES.len())];
        let ts = TS[pick(TS.len())];
        let data = [2u64, 4, 8][pick(3)] * 1024;
        let spec = JobSpec {
            workload,
            ts,
            mode: ExecMode::Pim(mode),
            bmf: 16,
            data_bytes_per_channel: data,
        };
        for refresh in [None, Some(RefreshParams::hbm2())] {
            let mut exp = ExperimentConfig::new(spec.workload, spec.mode);
            exp.ts_size = spec.ts;
            exp.bmf = spec.bmf;
            exp.data_bytes_per_channel = spec.data_bytes_per_channel;
            apply_sm_policy(&mut exp);
            exp.system.refresh = refresh;
            let label =
                format!("random[{i}] {workload} {mode} {ts} {data}B refresh={}", refresh.is_some());
            let build = |core: SimCore| {
                ScenarioBuilder::from_experiment(exp.clone())
                    .core(core)
                    .build()
                    .expect("scenario builds")
            };
            assert_reports_agree(&label, &build(SimCore::Cycle), &build(SimCore::Event));
        }
    }
}

/// The strongest form of the observe-only contract: attaching a
/// [`StallProfiler`] must not perturb the event core's **skip
/// decisions** — not just the end-of-run stats, but the exact sequence
/// of cycles the calendar chooses to execute. A sink that nudged any
/// component's `next_event` horizon would change which cycles run long
/// before it changed a counter.
#[test]
fn profiler_sink_does_not_perturb_skip_decisions() {
    for spec in fig05_points(DATA) {
        let boundaries = |with_sink: bool| {
            let scenario = spec.builder().core(SimCore::Event).build().expect("builds");
            let mut sys = scenario.system().expect("system builds");
            if with_sink {
                sys.attach_sink(Arc::new(StallProfiler::new(sys.clock_domains())));
            }
            sys.record_skip_boundaries(true);
            let stats = sys.run_with(scenario.budget(), SimCore::Event).expect("runs");
            (sys.take_skip_boundaries(), stats)
        };
        let (plain, plain_stats) = boundaries(false);
        let (profiled, profiled_stats) = boundaries(true);
        let label = format!("{} {}", spec.workload, spec.mode);
        assert!(
            (plain.len() as u64) < plain_stats.core_cycles,
            "{label}: the event core must actually skip cycles here"
        );
        assert_eq!(
            profiled, plain,
            "{label}: attaching a profiler must not change which cycles execute"
        );
        assert_eq!(profiled_stats, plain_stats, "{label}: stats must stay bit-identical");
    }
}

/// Attaching a sink under the event core is observe-only: the profiled
/// run's `RunStats` equal an unprofiled event-core run's, point for
/// point across fig05.
#[test]
fn event_core_sink_is_observe_only() {
    for spec in fig05_points(DATA) {
        let unprofiled = spec
            .builder()
            .core(SimCore::Event)
            .build()
            .expect("unprofiled builds")
            .run()
            .expect("unprofiled runs");
        let profiled =
            profile_scenario(&spec.builder().core(SimCore::Event).build().expect("builds"))
                .expect("profiled run succeeds");
        assert_eq!(
            profiled.stats, unprofiled,
            "{} {}: a live sink must not change the event core's outcome",
            spec.workload, spec.mode
        );
    }
}
