//! Randomized differential gauntlet for the calendar-queue event core.
//!
//! The calendar queue (`crates/sim/src/calendar.rs`) replaced the
//! per-component min-scan horizon, so the event core's skip decisions
//! now flow through bucket rotation, the two-level occupancy bitmap and
//! the far-overflow list. This gauntlet hammers that machinery with a
//! SplitMix64-seeded stream of configurations — workload, ordering
//! mode, TS size, BMF, data size, refresh on/off, and legal fault
//! layers on/off — and asserts for every case that the dense cycle
//! core and the event core agree on **every observable**:
//!
//! * `RunStats`, bit for bit (including the exact drain cycle);
//! * per-channel controller statistics;
//! * the final DRAM bytes of every materialised row of every channel;
//! * the serialized [`ProfileReport`], byte for byte, with the stall
//!   conservation invariant holding on both cores.
//!
//! Each case's digest is computed through [`Pool`] at `jobs = 1` and
//! `jobs = 8` and the two result vectors must be identical — the
//! gauntlet doubles as a determinism check on the sweep engine.
//!
//! The first [`SMALL_CASES`] cases of the stream run in the fast tier;
//! the full [`FULL_CASES`]-case gauntlet is tier 2 (`--include-ignored`
//! or `ORDERLIGHT_TIER2=1 ./ci.sh`).

use orderlight_suite::core::fault::FaultPlan;
use orderlight_suite::core::rng::Rng;
use orderlight_suite::hbm::RefreshParams;
use orderlight_suite::memctrl::McStats;
use orderlight_suite::pim::TsSize;
use orderlight_suite::profile::profile_scenario;
use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::apply_sm_policy;
use orderlight_suite::sim::pool::Pool;
use orderlight_suite::sim::{RunStats, Scenario, ScenarioBuilder, SimCore, System};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// Fast-tier prefix of the case stream.
const SMALL_CASES: usize = 8;

/// Full tier-2 gauntlet size (the ISSUE floor is 64).
const FULL_CASES: usize = 64;

/// Seed of the case stream. Changing it re-rolls the whole gauntlet;
/// keep it fixed so failures reproduce by case index.
const SEED: u64 = 0x05ca_1e5c_a1e5_ca1e;

/// One drawn configuration, fully determined by the stream position.
#[derive(Debug, Clone)]
struct FuzzCase {
    index: usize,
    workload: WorkloadId,
    mode: OrderingMode,
    ts: TsSize,
    bmf: u32,
    data: u64,
    refresh: bool,
    faults: bool,
}

impl FuzzCase {
    fn label(&self) -> String {
        format!(
            "case[{}] {} {} {} bmf={} {}B refresh={} faults={}",
            self.index,
            self.workload,
            self.mode,
            self.ts,
            self.bmf,
            self.data,
            self.refresh,
            self.faults
        )
    }

    fn experiment(&self) -> ExperimentConfig {
        let mut exp = ExperimentConfig::new(self.workload, ExecMode::Pim(self.mode));
        exp.ts_size = self.ts;
        exp.bmf = self.bmf;
        exp.data_bytes_per_channel = self.data;
        apply_sm_policy(&mut exp);
        if self.refresh {
            exp.system.refresh = Some(RefreshParams::hbm2());
        }
        exp
    }

    fn scenario(&self, core: SimCore) -> Scenario {
        let faults = if self.faults {
            // Legal stress faults only (NoC jitter, adversarial
            // tie-breaks, refresh storms): they perturb timing but both
            // cores must follow the perturbation identically.
            FaultPlan::stress(SEED ^ self.index as u64)
        } else {
            FaultPlan::none()
        };
        ScenarioBuilder::from_experiment(self.experiment())
            .keep_sm_allocation()
            .faults(faults)
            .core(core)
            .build()
            .expect("fuzz scenario builds")
    }
}

/// Draws the first `n` cases of the fixed-seed stream.
fn fuzz_cases(n: usize) -> Vec<FuzzCase> {
    const WORKLOADS: [WorkloadId; 5] = [
        WorkloadId::Add,
        WorkloadId::Daxpy,
        WorkloadId::Scale,
        WorkloadId::Copy,
        WorkloadId::Triad,
    ];
    const MODES: [OrderingMode; 6] = [
        OrderingMode::OrderLight,
        OrderingMode::Fence,
        OrderingMode::SeqNum,
        OrderingMode::LouvreVersioned,
        OrderingMode::BulkBitwiseStrong,
        OrderingMode::None,
    ];
    const TS: [TsSize; 4] = [TsSize::Sixteenth, TsSize::Eighth, TsSize::Quarter, TsSize::Half];
    const BMF: [u32; 3] = [4, 8, 16];
    const DATA: [u64; 3] = [2 * 1024, 4 * 1024, 8 * 1024];

    let mut rng = Rng::new(SEED);
    let mut pick = move |m: usize| (rng.next_u64() % m as u64) as usize;
    (0..n)
        .map(|index| FuzzCase {
            index,
            workload: WORKLOADS[pick(WORKLOADS.len())],
            mode: MODES[pick(MODES.len())],
            ts: TS[pick(TS.len())],
            bmf: BMF[pick(BMF.len())],
            data: DATA[pick(DATA.len())],
            refresh: pick(2) == 1,
            faults: pick(2) == 1,
        })
        .collect()
}

/// Everything one case observed on the cycle core, after asserting the
/// event core matched it field for field. `PartialEq` so the pool-level
/// comparison covers every byte.
#[derive(Debug, Clone, PartialEq)]
struct CaseDigest {
    label: String,
    stats: RunStats,
    channel_stats: Vec<McStats>,
    dram_rows: Vec<((orderlight_suite::core::types::BankId, u32), Vec<u8>)>,
    report_json: String,
}

/// Runs `case` on both cores, asserts every observable agrees, and
/// returns the cycle-core digest.
fn run_case(case: &FuzzCase) -> CaseDigest {
    let label = case.label();

    let raw = |core: SimCore| {
        let scenario = case.scenario(core);
        let mut sys = scenario.system().expect("system builds");
        let stats = sys.run_with(scenario.budget(), core).expect("drains within budget");
        (stats, sys)
    };
    let (cycle_stats, cycle_sys) = raw(SimCore::Cycle);
    let (event_stats, event_sys) = raw(SimCore::Event);

    assert_eq!(event_stats, cycle_stats, "{label}: RunStats must be bit-identical");
    assert_eq!(
        event_sys.channel_stats(),
        cycle_sys.channel_stats(),
        "{label}: per-channel controller stats must match"
    );
    assert_eq!(event_sys.now(), cycle_sys.now(), "{label}: core clock position");
    assert_eq!(event_sys.mem_now(), cycle_sys.mem_now(), "{label}: memory clock position");
    let dram_of = |sys: &System| {
        sys.controllers()
            .iter()
            .flat_map(|mc| {
                mc.channel().store().rows_sorted().into_iter().map(|(k, v)| (k, v.to_vec()))
            })
            .collect::<Vec<_>>()
    };
    let dram_rows = dram_of(&cycle_sys);
    assert_eq!(
        dram_of(&event_sys),
        dram_rows,
        "{label}: final DRAM contents must be byte-identical"
    );

    let profiled = |core: SimCore| {
        let outcome = profile_scenario(&case.scenario(core)).expect("profiled run completes");
        assert!(outcome.is_conserved(), "{label} ({core:?}): {}", outcome.summary());
        outcome
    };
    let on_cycle = profiled(SimCore::Cycle);
    let on_event = profiled(SimCore::Event);
    assert_eq!(
        on_event.stats, cycle_stats,
        "{label}: a live profiler sink must not change the outcome"
    );
    let report_json = on_cycle.report.to_json();
    assert_eq!(
        on_event.report.to_json(),
        report_json,
        "{label}: serialized ProfileReport must match byte for byte across cores"
    );

    CaseDigest {
        label,
        stats: cycle_stats,
        channel_stats: cycle_sys.channel_stats(),
        dram_rows,
        report_json,
    }
}

/// Runs the gauntlet through a pool at each worker count and asserts
/// the digest vectors are identical — the differential checks pass and
/// the results do not depend on scheduling.
fn run_gauntlet(cases: &[FuzzCase]) {
    let digests_at = |workers: usize| -> Vec<CaseDigest> {
        let jobs: Vec<_> = cases
            .iter()
            .map(|case| {
                let case = case.clone();
                move || run_case(&case)
            })
            .collect();
        Pool::new(workers).run(jobs)
    };
    let serial = digests_at(1);
    assert_eq!(serial.len(), cases.len());
    let parallel = digests_at(8);
    assert_eq!(parallel, serial, "jobs=8 must be bit-identical to jobs=1");
}

#[test]
fn fuzz_gauntlet_small() {
    run_gauntlet(&fuzz_cases(SMALL_CASES));
}

#[test]
#[ignore = "tier 2: full 64-case differential gauntlet at jobs=1 and jobs=8; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fuzz_gauntlet_full() {
    run_gauntlet(&fuzz_cases(FULL_CASES));
}

/// Regression for the budget boundary the calendar queue must respect:
/// with refresh enabled, future-dated memory-domain horizons sit at or
/// beyond the budget cycle near the end of a run, and the event core
/// must burn the remaining budget instead of executing them. A budget
/// exactly at the drain cycle succeeds bit-identically on both cores;
/// one cycle below, both cores fail with the identical error.
#[test]
fn budget_exactly_at_horizon_is_core_independent() {
    let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
    exp.ts_size = TsSize::Eighth;
    exp.data_bytes_per_channel = 2 * 1024;
    apply_sm_policy(&mut exp);
    exp.system.refresh = Some(RefreshParams::hbm2());

    let run_budget = |core: SimCore, budget: u64| {
        let mut sys = System::build(exp.clone()).expect("builds");
        sys.run_with(budget, core)
    };
    let drain = run_budget(SimCore::Cycle, 50_000_000).expect("drains").core_cycles;
    let at_cycle = run_budget(SimCore::Cycle, drain).expect("exact budget drains (cycle core)");
    let at_event = run_budget(SimCore::Event, drain).expect("exact budget drains (event core)");
    assert_eq!(at_event, at_cycle, "exact-budget runs must be bit-identical");
    let err_cycle = run_budget(SimCore::Cycle, drain - 1).expect_err("one short fails (cycle)");
    let err_event = run_budget(SimCore::Event, drain - 1).expect_err("one short fails (event)");
    assert_eq!(err_event, err_cycle, "budget errors must be identical across cores");
}

/// The case stream itself is deterministic: the fast tier runs a true
/// prefix of the tier-2 gauntlet, so a tier-2 failure at index < 8
/// reproduces in the fast tier.
#[test]
fn small_cases_are_a_prefix_of_the_full_stream() {
    let small = fuzz_cases(SMALL_CASES);
    let full = fuzz_cases(FULL_CASES);
    for (s, f) in small.iter().zip(&full) {
        assert_eq!(format!("{s:?}"), format!("{f:?}"));
    }
    // The stream must actually exercise the interesting axes.
    assert!(full.iter().any(|c| c.refresh) && full.iter().any(|c| !c.refresh));
    assert!(full.iter().any(|c| c.faults) && full.iter().any(|c| !c.faults));
    assert!(full.iter().any(|c| c.mode == OrderingMode::Fence));
    assert!(full.iter().any(|c| c.mode == OrderingMode::OrderLight));
    assert!(full.iter().any(|c| c.mode == OrderingMode::LouvreVersioned));
    assert!(full.iter().any(|c| c.mode == OrderingMode::BulkBitwiseStrong));
}
