//! Contract tests for the `orderlight serve` service surface: served
//! replies are bit-identical to direct in-process runs, repeated
//! requests hit the scenario cache, many concurrent clients are served
//! correctly, and every error path (malformed JSON, bad schema
//! version, unknown field, mid-run disconnect) yields a typed reply —
//! never a panic, a dropped connection without a reply, or a wedged
//! worker.

use std::io::Write;
use std::net::TcpStream;

use orderlight_suite::sim::schema::{stats_to_value, ScenarioSpec, SCENARIO_SCHEMA_V1};
use orderlight_suite::sim::service::{
    extract_stats, reply_kind, request, Server, FLIGHTREC_SCHEMA_V1, SERVICE_METRICS_SCHEMA_V1,
    SERVICE_STATS_SCHEMA_V1,
};
use orderlight_suite::trace::json;

/// Binds a server on an ephemeral loopback port and runs it on a
/// background thread. Send `{"cmd":"shutdown"}` and join the handle to
/// tear it down.
fn start_server(workers: usize) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    start_configured(Server::bind("127.0.0.1:0", workers).expect("bind loopback"))
}

fn start_configured(server: Server) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let replies = request(addr, r#"{"cmd":"shutdown"}"#).expect("shutdown request");
    assert_eq!(reply_kind(replies.last().expect("bye reply")).as_deref(), Some("bye"));
    handle.join().expect("server thread joins").expect("server exits cleanly");
}

/// A small, fast scenario request (the fig05 shape: Add under
/// OrderLight).
fn add_request() -> String {
    format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "data_kb": 8}}"#)
}

/// What a direct in-process run of [`add_request`] serialises to.
fn direct_stats() -> String {
    let spec = ScenarioSpec::parse_str(&add_request()).expect("request parses");
    let stats = spec.build().expect("scenario builds").run().expect("scenario runs");
    stats_to_value(&stats).to_json()
}

/// The terminal reply of one served request, parsed.
fn result_of(addr: &str, line: &str) -> json::Value {
    let replies = request(addr, line).expect("request round-trips");
    let last = replies.last().expect("a terminal reply");
    json::parse(last).expect("terminal reply parses")
}

#[test]
fn served_reply_is_bit_identical_and_repeat_hits_the_cache() {
    let (addr, handle) = start_server(2);
    let expected = direct_stats();

    let first = result_of(&addr, &add_request());
    assert_eq!(first.get("reply").and_then(json::Value::as_str), Some("result"));
    assert_eq!(first.get("cached").and_then(json::Value::as_bool), Some(false));
    assert!(first.get("slo").and_then(|s| s.get("p50")).is_some(), "SLO percentiles present");
    assert_eq!(
        first.get("stats").expect("stats present").to_json(),
        expected,
        "served stats must be byte-identical to a direct run"
    );

    let second = result_of(&addr, &add_request());
    assert_eq!(
        second.get("cached").and_then(json::Value::as_bool),
        Some(true),
        "repeated request must be answered from the cache"
    );
    assert_eq!(second.get("stats").expect("stats present").to_json(), expected);

    shutdown(&addr, handle);
}

#[test]
fn eight_concurrent_clients_all_get_exact_replies() {
    let (addr, handle) = start_server(4);
    let expected = direct_stats();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || {
                    // Tag each request with an id to prove reply routing.
                    let line = format!(
                        r#"{{"id": {i}, "schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "data_kb": 8}}"#
                    );
                    let replies = request(addr, &line).expect("request round-trips");
                    let last = replies.last().expect("terminal reply").clone();
                    (i, last)
                })
            })
            .collect();
        for h in handles {
            let (i, last) = h.join().expect("client thread joins");
            let doc = json::parse(&last).expect("reply parses");
            assert_eq!(
                doc.get("id").and_then(json::Value::as_f64),
                Some(f64::from(i)),
                "reply must echo the request id"
            );
            let stats = extract_stats(&last).expect("a result reply");
            assert_eq!(stats, expected, "client {i}: served stats must match a direct run");
        }
    });
    shutdown(&addr, handle);
}

#[test]
fn error_surfaces_are_typed_replies() {
    let (addr, handle) = start_server(1);
    let cases = [
        ("{not json", "parse"),
        (r#"{"workload": "Add"}"#, "schema"), // missing version
        (r#"{"schema": "orderlight/scenario/v2", "workload": "Add"}"#, "schema"), // bad version
        (
            &format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "bmg": 4}}"#),
            "schema",
        ), // unknown field
        (
            &format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "bmf": 0}}"#),
            "config",
        ), // fields valid, config inconsistent
        (r#"{"cmd": "reboot"}"#, "proto"),
    ];
    for (line, kind) in cases {
        let doc = result_of(&addr, line);
        assert_eq!(
            doc.get("reply").and_then(json::Value::as_str),
            Some("error"),
            "{line} must produce an error reply"
        );
        assert_eq!(
            doc.get("kind").and_then(json::Value::as_str),
            Some(kind),
            "{line} must be typed '{kind}'"
        );
        assert!(
            doc.get("message").and_then(json::Value::as_str).is_some_and(|m| !m.is_empty()),
            "{line} must carry a message"
        );
    }
    // The connection and workers survive every error: a real request
    // still round-trips afterwards.
    let ok = result_of(&addr, &add_request());
    assert_eq!(ok.get("reply").and_then(json::Value::as_str), Some("result"));
    shutdown(&addr, handle);
}

#[test]
fn mid_run_disconnect_does_not_lose_the_run_or_wedge_a_worker() {
    let (addr, handle) = start_server(1);
    // Fire a request and hang up immediately, before any reply can be
    // consumed — the single worker must survive the dead client.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(add_request().as_bytes()).expect("send request");
        stream.write_all(b"\n").expect("send newline");
        // Dropping the stream here closes the socket mid-run.
    }
    // The same scenario from a live client still completes — and once
    // the abandoned run finishes, the cache retains its result, so
    // this reply eventually comes back cached (either from our own run
    // or the abandoned one; both are byte-identical by determinism).
    let expected = direct_stats();
    let doc = result_of(&addr, &add_request());
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("result"));
    assert_eq!(doc.get("stats").expect("stats present").to_json(), expected);
    let again = result_of(&addr, &add_request());
    assert_eq!(again.get("cached").and_then(json::Value::as_bool), Some(true));
    shutdown(&addr, handle);
}

#[test]
fn stats_command_reports_hits_misses_and_cache_occupancy() {
    let (addr, handle) = start_server(1);
    let _ = result_of(&addr, &add_request());
    let _ = result_of(&addr, &add_request());
    let doc = result_of(&addr, r#"{"cmd": "stats"}"#);
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("stats"));
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some(SERVICE_STATS_SCHEMA_V1),
        "the stats reply is schema-versioned like scenario/v1"
    );
    assert_eq!(doc.get("misses").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("hits").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("hit_ratio").and_then(json::Value::as_f64), Some(0.5));
    assert_eq!(doc.get("cached_scenarios").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("cache_size").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("cache_max").and_then(json::Value::as_f64), Some(0.0));
    assert_eq!(doc.get("insertions").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("evictions").and_then(json::Value::as_f64), Some(0.0));
    shutdown(&addr, handle);
}

/// Helper: a scenario request distinct from [`add_request`].
fn other_request(data_kb: u64) -> String {
    format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "data_kb": {data_kb}}}"#)
}

/// Helper: the metrics snapshot of a running server.
fn metrics_snapshot(addr: &str) -> json::Value {
    let doc = result_of(addr, r#"{"cmd": "metrics"}"#);
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("metrics"));
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some(SERVICE_METRICS_SCHEMA_V1),
        "the metrics reply is schema-versioned"
    );
    doc.get("snapshot").expect("snapshot present").clone()
}

fn counter(snap: &json::Value, group: &str, key: &str) -> f64 {
    snap.get(group)
        .and_then(|g| g.get(key))
        .and_then(json::Value::as_f64)
        .unwrap_or_else(|| panic!("metric {group}.{key} missing"))
}

#[test]
fn evicted_scenario_recomputes_bit_identically() {
    let server = Server::bind("127.0.0.1:0", 1).expect("bind loopback").with_cache_max(1);
    let (addr, handle) = start_configured(server);
    let expected = direct_stats();

    let first = result_of(&addr, &add_request());
    assert_eq!(first.get("cached").and_then(json::Value::as_bool), Some(false));
    // A second, distinct scenario evicts the first (cache bound is 1).
    let other = result_of(&addr, &other_request(16));
    assert_eq!(other.get("cached").and_then(json::Value::as_bool), Some(false));

    let stats = result_of(&addr, r#"{"cmd": "stats"}"#);
    assert_eq!(stats.get("cache_size").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(stats.get("cache_max").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(stats.get("insertions").and_then(json::Value::as_f64), Some(2.0));
    assert_eq!(stats.get("evictions").and_then(json::Value::as_f64), Some(1.0));
    let snap = metrics_snapshot(&addr);
    assert_eq!(counter(&snap, "cache", "insertions"), 2.0);
    assert_eq!(counter(&snap, "cache", "evictions"), 1.0);
    assert_eq!(counter(&snap, "cache", "size"), 1.0);

    // Re-submitting the evicted scenario recomputes — a miss again —
    // and the recomputed stats are byte-identical to the original run.
    let again = result_of(&addr, &add_request());
    assert_eq!(
        again.get("cached").and_then(json::Value::as_bool),
        Some(false),
        "evicted scenario must recompute"
    );
    assert_eq!(again.get("stats").expect("stats present").to_json(), expected);
    assert_eq!(first.get("stats").expect("stats present").to_json(), expected);
    shutdown(&addr, handle);
}

#[test]
fn metrics_counters_are_exact_under_a_serialized_session() {
    let (addr, handle) = start_server(1);
    // Scripted single-client session: one miss, one hit, one schema
    // error — each request's telemetry commits before its terminal
    // reply, so the very next snapshot reflects it exactly.
    let _ = result_of(&addr, &add_request());
    let _ = result_of(&addr, &add_request());
    let err = result_of(&addr, r#"{"workload": "Add"}"#);
    assert_eq!(err.get("reply").and_then(json::Value::as_str), Some("error"));

    let snap = metrics_snapshot(&addr);
    // The metrics request itself is the 4th received request.
    assert_eq!(counter(&snap, "requests", "received"), 4.0);
    assert_eq!(counter(&snap, "requests", "accepted"), 1.0);
    assert_eq!(counter(&snap, "requests", "running"), 1.0);
    assert_eq!(counter(&snap, "requests", "result"), 2.0);
    assert_eq!(counter(&snap, "requests", "error"), 1.0);
    assert_eq!(counter(&snap, "cache", "hits"), 1.0);
    assert_eq!(counter(&snap, "cache", "misses"), 1.0);
    assert_eq!(counter(&snap, "cache", "insertions"), 1.0);
    assert_eq!(counter(&snap, "cache", "evictions"), 0.0);
    assert_eq!(counter(&snap, "cache", "size"), 1.0);
    assert_eq!(counter(&snap, "queue", "depth"), 0.0);
    assert_eq!(counter(&snap, "workers", "jobs"), 1.0);
    assert_eq!(counter(&snap, "workers", "busy"), 0.0);
    shutdown(&addr, handle);
}

#[test]
fn metrics_deterministic_groups_are_byte_identical_across_sessions() {
    // Two fresh servers replay the same serialized script; the
    // deterministic snapshot groups (requests / cache / queue) must
    // serialise to identical bytes. io/workers/timing are wall-clock
    // and only monotone, so they are excluded by construction.
    let session = || {
        let (addr, handle) = start_server(1);
        let _ = result_of(&addr, &add_request());
        let _ = result_of(&addr, &add_request());
        let _ = result_of(&addr, "{not json");
        let snap = metrics_snapshot(&addr);
        shutdown(&addr, handle);
        ["requests", "cache", "queue"]
            .map(|g| snap.get(g).unwrap_or_else(|| panic!("group {g} missing")).to_json())
    };
    let a = session();
    let b = session();
    assert_eq!(a, b, "deterministic metric groups must be byte-identical across sessions");
}

#[test]
fn metrics_stay_monotonic_under_concurrent_clients() {
    let (addr, handle) = start_server(4);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let addr = &addr;
            scope.spawn(move || {
                let replies = request(addr, &add_request()).expect("request round-trips");
                assert_eq!(reply_kind(replies.last().expect("reply")).as_deref(), Some("result"));
            });
        }
    });
    let first = metrics_snapshot(&addr);
    assert_eq!(counter(&first, "requests", "result"), 8.0);
    assert_eq!(
        counter(&first, "cache", "hits") + counter(&first, "cache", "misses"),
        8.0,
        "every request is attributed to a hit or a miss"
    );
    assert!(counter(&first, "cache", "misses") >= 1.0);
    assert_eq!(counter(&first, "queue", "depth"), 0.0, "queue drains");
    // A later snapshot never decreases any counter.
    let second = metrics_snapshot(&addr);
    for group in ["requests", "cache", "io", "workers"] {
        let json::Value::Obj(map) = first.get(group).expect("group present") else {
            panic!("group {group} is not an object");
        };
        for (key, value) in map {
            if matches!((group, key.as_str()), ("workers", "busy") | ("cache", "size")) {
                continue; // gauges may legitimately move down
            }
            let was = value.as_f64().expect("scalar metric");
            let now = counter(&second, group, key);
            assert!(now >= was, "{group}.{key} regressed: {was} -> {now}");
        }
    }
    shutdown(&addr, handle);
}

#[test]
fn telemetry_is_observe_only_and_spans_ride_the_result() {
    let with = start_server(1);
    let server = Server::bind("127.0.0.1:0", 1).expect("bind loopback").with_telemetry(false);
    let without = start_configured(server);

    let on = result_of(&with.0, &add_request());
    let off = result_of(&without.0, &add_request());
    // The observe-only contract: run results are byte-identical with
    // telemetry enabled vs disabled.
    assert_eq!(
        on.get("stats").expect("stats present").to_json(),
        off.get("stats").expect("stats present").to_json(),
        "telemetry must not change the served result"
    );
    // Spans ride the result reply only when telemetry is on, and cover
    // the full phase vocabulary.
    let span = on.get("span").expect("span rides the result reply with telemetry on");
    for phase in ["parse_us", "queue_us", "run_us", "serialize_us", "write_us"] {
        assert!(span.get(phase).and_then(json::Value::as_f64).is_some(), "{phase} present");
    }
    assert!(off.get("span").is_none(), "no span without telemetry");
    // Metrics surfaces answer a typed error when telemetry is off —
    // never a dropped connection.
    for cmd in [r#"{"cmd": "metrics"}"#, r#"{"cmd": "flightrec"}"#] {
        let doc = result_of(&without.0, cmd);
        assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("error"));
        assert_eq!(doc.get("kind").and_then(json::Value::as_str), Some("proto"));
    }
    // Stats still works without telemetry (it predates the plane).
    let stats = result_of(&without.0, r#"{"cmd": "stats"}"#);
    assert_eq!(stats.get("misses").and_then(json::Value::as_f64), Some(1.0));
    shutdown(&with.0, with.1);
    shutdown(&without.0, without.1);
}

#[test]
fn flight_recorder_holds_recent_requests_and_error_payloads() {
    let (addr, handle) = start_server(1);
    let _ = result_of(&addr, &add_request());
    let _ = result_of(&addr, &add_request());
    let _ = result_of(&addr, "{not json");

    let doc = result_of(&addr, r#"{"cmd": "flightrec"}"#);
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("flightrec"));
    assert_eq!(doc.get("schema").and_then(json::Value::as_str), Some(FLIGHTREC_SCHEMA_V1));
    let requests = doc.get("requests").and_then(json::Value::as_array).expect("request ring");
    assert_eq!(requests.len(), 3);
    let outcomes: Vec<&str> =
        requests.iter().filter_map(|r| r.get("outcome").and_then(json::Value::as_str)).collect();
    assert_eq!(outcomes, ["result-miss", "result-hit", "error:parse"]);
    // Both scenario requests carry the same canonical hash and a full
    // phase breakdown.
    let hashes: Vec<&str> = requests
        .iter()
        .filter_map(|r| r.get("scenario_hash").and_then(json::Value::as_str))
        .collect();
    assert_eq!(hashes.len(), 2);
    assert_eq!(hashes[0], hashes[1]);
    assert!(requests[0].get("phases").and_then(|p| p.get("run_us")).is_some());
    // The parse failure's payload landed in the error ring.
    let errors = doc.get("errors").and_then(json::Value::as_array).expect("error ring");
    assert_eq!(errors.len(), 1);
    assert!(errors[0].as_str().expect("payload is a string").contains("\"kind\":\"parse\""));
    shutdown(&addr, handle);
}
