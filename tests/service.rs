//! Contract tests for the `orderlight serve` service surface: served
//! replies are bit-identical to direct in-process runs, repeated
//! requests hit the scenario cache, many concurrent clients are served
//! correctly, and every error path (malformed JSON, bad schema
//! version, unknown field, mid-run disconnect) yields a typed reply —
//! never a panic, a dropped connection without a reply, or a wedged
//! worker.

use std::io::Write;
use std::net::TcpStream;

use orderlight_suite::sim::schema::{stats_to_value, ScenarioSpec, SCENARIO_SCHEMA_V1};
use orderlight_suite::sim::service::{extract_stats, reply_kind, request, Server};
use orderlight_suite::trace::json;

/// Binds a server on an ephemeral loopback port and runs it on a
/// background thread. Send `{"cmd":"shutdown"}` and join the handle to
/// tear it down.
fn start_server(workers: usize) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", workers).expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let replies = request(addr, r#"{"cmd":"shutdown"}"#).expect("shutdown request");
    assert_eq!(reply_kind(replies.last().expect("bye reply")).as_deref(), Some("bye"));
    handle.join().expect("server thread joins").expect("server exits cleanly");
}

/// A small, fast scenario request (the fig05 shape: Add under
/// OrderLight).
fn add_request() -> String {
    format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "data_kb": 8}}"#)
}

/// What a direct in-process run of [`add_request`] serialises to.
fn direct_stats() -> String {
    let spec = ScenarioSpec::parse_str(&add_request()).expect("request parses");
    let stats = spec.build().expect("scenario builds").run().expect("scenario runs");
    stats_to_value(&stats).to_json()
}

/// The terminal reply of one served request, parsed.
fn result_of(addr: &str, line: &str) -> json::Value {
    let replies = request(addr, line).expect("request round-trips");
    let last = replies.last().expect("a terminal reply");
    json::parse(last).expect("terminal reply parses")
}

#[test]
fn served_reply_is_bit_identical_and_repeat_hits_the_cache() {
    let (addr, handle) = start_server(2);
    let expected = direct_stats();

    let first = result_of(&addr, &add_request());
    assert_eq!(first.get("reply").and_then(json::Value::as_str), Some("result"));
    assert_eq!(first.get("cached").and_then(json::Value::as_bool), Some(false));
    assert!(first.get("slo").and_then(|s| s.get("p50")).is_some(), "SLO percentiles present");
    assert_eq!(
        first.get("stats").expect("stats present").to_json(),
        expected,
        "served stats must be byte-identical to a direct run"
    );

    let second = result_of(&addr, &add_request());
    assert_eq!(
        second.get("cached").and_then(json::Value::as_bool),
        Some(true),
        "repeated request must be answered from the cache"
    );
    assert_eq!(second.get("stats").expect("stats present").to_json(), expected);

    shutdown(&addr, handle);
}

#[test]
fn eight_concurrent_clients_all_get_exact_replies() {
    let (addr, handle) = start_server(4);
    let expected = direct_stats();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || {
                    // Tag each request with an id to prove reply routing.
                    let line = format!(
                        r#"{{"id": {i}, "schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "data_kb": 8}}"#
                    );
                    let replies = request(addr, &line).expect("request round-trips");
                    let last = replies.last().expect("terminal reply").clone();
                    (i, last)
                })
            })
            .collect();
        for h in handles {
            let (i, last) = h.join().expect("client thread joins");
            let doc = json::parse(&last).expect("reply parses");
            assert_eq!(
                doc.get("id").and_then(json::Value::as_f64),
                Some(f64::from(i)),
                "reply must echo the request id"
            );
            let stats = extract_stats(&last).expect("a result reply");
            assert_eq!(stats, expected, "client {i}: served stats must match a direct run");
        }
    });
    shutdown(&addr, handle);
}

#[test]
fn error_surfaces_are_typed_replies() {
    let (addr, handle) = start_server(1);
    let cases = [
        ("{not json", "parse"),
        (r#"{"workload": "Add"}"#, "schema"), // missing version
        (r#"{"schema": "orderlight/scenario/v2", "workload": "Add"}"#, "schema"), // bad version
        (
            &format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "bmg": 4}}"#),
            "schema",
        ), // unknown field
        (
            &format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Add", "bmf": 0}}"#),
            "config",
        ), // fields valid, config inconsistent
        (r#"{"cmd": "reboot"}"#, "proto"),
    ];
    for (line, kind) in cases {
        let doc = result_of(&addr, line);
        assert_eq!(
            doc.get("reply").and_then(json::Value::as_str),
            Some("error"),
            "{line} must produce an error reply"
        );
        assert_eq!(
            doc.get("kind").and_then(json::Value::as_str),
            Some(kind),
            "{line} must be typed '{kind}'"
        );
        assert!(
            doc.get("message").and_then(json::Value::as_str).is_some_and(|m| !m.is_empty()),
            "{line} must carry a message"
        );
    }
    // The connection and workers survive every error: a real request
    // still round-trips afterwards.
    let ok = result_of(&addr, &add_request());
    assert_eq!(ok.get("reply").and_then(json::Value::as_str), Some("result"));
    shutdown(&addr, handle);
}

#[test]
fn mid_run_disconnect_does_not_lose_the_run_or_wedge_a_worker() {
    let (addr, handle) = start_server(1);
    // Fire a request and hang up immediately, before any reply can be
    // consumed — the single worker must survive the dead client.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(add_request().as_bytes()).expect("send request");
        stream.write_all(b"\n").expect("send newline");
        // Dropping the stream here closes the socket mid-run.
    }
    // The same scenario from a live client still completes — and once
    // the abandoned run finishes, the cache retains its result, so
    // this reply eventually comes back cached (either from our own run
    // or the abandoned one; both are byte-identical by determinism).
    let expected = direct_stats();
    let doc = result_of(&addr, &add_request());
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("result"));
    assert_eq!(doc.get("stats").expect("stats present").to_json(), expected);
    let again = result_of(&addr, &add_request());
    assert_eq!(again.get("cached").and_then(json::Value::as_bool), Some(true));
    shutdown(&addr, handle);
}

#[test]
fn stats_command_reports_hits_and_misses() {
    let (addr, handle) = start_server(1);
    let _ = result_of(&addr, &add_request());
    let _ = result_of(&addr, &add_request());
    let doc = result_of(&addr, r#"{"cmd": "stats"}"#);
    assert_eq!(doc.get("reply").and_then(json::Value::as_str), Some("stats"));
    assert_eq!(doc.get("misses").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("hits").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(doc.get("cached_scenarios").and_then(json::Value::as_f64), Some(1.0));
    shutdown(&addr, handle);
}
