//! Determinism contract of the parallel sweep engine (the headline
//! guarantee of the job pool): executing a figure's design points
//! through [`Pool`] at any worker count is **bit-identical** to the
//! classic serial loop — every `SweepPoint` field, every stats counter,
//! and the result ordering.
//!
//! The sweeps run at a reduced per-channel data size; the Figure 5
//! sweep plus the purity and error-ordering checks stay in the fast
//! tier, while the larger Figure 10/12 sweeps are tier 2 (`#[ignore]`,
//! run with `--include-ignored` or `ORDERLIGHT_TIER2=1 ./ci.sh`).
//! `ci.sh` additionally cross-checks serial vs. parallel over all four
//! figures in release mode through `orderlight bench --quick`.

use orderlight_suite::sim::config::{ExecMode, ExperimentConfig};
use orderlight_suite::sim::experiments::{
    fig05_points, fig10_points, fig12_points, run_points, run_points_serial, JobSpec, SweepPoint,
};
use orderlight_suite::sim::pool::Pool;
use orderlight_suite::sim::{RunStats, System};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// Small enough that a full figure sweep is sub-second, large enough
/// that every kernel still streams multiple row-buffer tiles.
const DATA: u64 = 8 * 1024;

/// Worker counts the contract is asserted at: the serial fallback, the
/// smallest real pool, and more workers than this host has cores.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bit_identical(figure: &str, specs: &[JobSpec]) {
    let serial: Vec<SweepPoint> = run_points_serial(specs).expect("serial sweep runs");
    assert_eq!(serial.len(), specs.len(), "{figure}: one point per spec");
    for workers in WORKER_COUNTS {
        let parallel = run_points(specs, &Pool::new(workers)).expect("parallel sweep runs");
        // Vec<SweepPoint> equality covers ordering plus every field of
        // every point (workload, ts, mode, bmf and the full RunStats).
        assert_eq!(
            parallel, serial,
            "{figure}: jobs={workers} must be bit-identical to the serial loop"
        );
    }
}

#[test]
fn fig05_parallel_matches_serial() {
    assert_bit_identical("fig05", &fig05_points(DATA));
}

#[test]
#[ignore = "tier 2: 4 full Figure 10 sweeps (~8 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig10_parallel_matches_serial() {
    assert_bit_identical("fig10", &fig10_points(DATA));
}

#[test]
#[ignore = "tier 2: 4 full Figure 12 sweeps (~13 s debug); run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig12_parallel_matches_serial() {
    assert_bit_identical("fig12", &fig12_points(DATA));
}

/// `System::run` is a pure function of (config, cycle budget): the same
/// experiment built and run concurrently on several OS threads yields
/// the same `RunStats`, bit for bit. This is the precondition that
/// makes run-level parallelism safe — no hidden global state, no
/// wall-clock or thread-identity leakage into the simulation.
#[test]
fn system_run_is_a_pure_function_of_its_config() {
    let run_once = || -> RunStats {
        let mut exp =
            ExperimentConfig::new(WorkloadId::Daxpy, ExecMode::Pim(OrderingMode::OrderLight));
        exp.data_bytes_per_channel = DATA;
        let mut system = System::build(exp).expect("builds");
        system.run(50_000_000).expect("runs")
    };
    let reference = run_once();
    assert!(reference.is_correct());
    let concurrent: Vec<RunStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4).map(|_| scope.spawn(run_once)).collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    for (i, stats) in concurrent.iter().enumerate() {
        assert_eq!(*stats, reference, "concurrent run {i} diverged from the reference");
    }
}

/// Error reporting is deterministic too: a sweep containing an invalid
/// point fails with the same error regardless of worker count, and the
/// error is the first failure in **input** order (not completion
/// order).
#[test]
fn first_error_in_input_order_at_any_worker_count() {
    let mut specs = fig05_points(DATA);
    // Poison two points with a zero-sized job, which cannot build.
    specs[1].data_bytes_per_channel = 0;
    specs[3].data_bytes_per_channel = 0;
    let serial_err = run_points_serial(&specs).expect_err("zero-sized point must fail");
    for workers in WORKER_COUNTS {
        let err = run_points(&specs, &Pool::new(workers)).expect_err("must fail");
        assert_eq!(
            format!("{err}"),
            format!("{serial_err}"),
            "jobs={workers}: error must match the serial loop"
        );
    }
}
