//! The ordering-violation oracle and fault-injection contracts:
//!
//! 1. **Soundness on correct schedules** — the oracle reports zero
//!    violations on every clean tier-1 scenario, under both execution
//!    cores, with and without the legal fault layers enabled
//!    ([`FaultPlan::stress`]: NoC jitter, adversarial scheduler
//!    tie-breaks, refresh storms). Legal faults may slow a run down but
//!    must never break it.
//! 2. **Completeness on the seeded mutation** — eliding a single
//!    ordering edge ([`DropEdge`]) must produce at least one reported
//!    violation *and* wrong DRAM bytes. This is the mutation gate: an
//!    oracle that stays silent here is vacuous.
//! 3. **Fault determinism** — identical fault seeds yield bit-identical
//!    perturbed schedules regardless of execution core or job-pool
//!    width; different seeds genuinely perturb the schedule.

use orderlight_suite::check::check_scenario;
use orderlight_suite::core::fault::{DropEdge, FaultPlan};
use orderlight_suite::sim::config::ExecMode;
use orderlight_suite::sim::core_select::SimCore;
use orderlight_suite::sim::pool::Pool;
use orderlight_suite::sim::{RunStats, Scenario, ScenarioBuilder};
use orderlight_suite::workloads::{OrderingMode, WorkloadId};

/// Small enough for sub-second runs, large enough for multiple
/// row-buffer tiles and ordering packets per channel.
const DATA_KB: u64 = 8;

fn scenario(workload: WorkloadId, mode: ExecMode, core: SimCore, faults: FaultPlan) -> Scenario {
    ScenarioBuilder::new(workload, mode)
        .data_kb(DATA_KB)
        .core(core)
        .faults(faults)
        .build()
        .expect("valid scenario")
}

/// The clean tier-1 scenario matrix: every ordering mode that must be
/// functionally correct, on a workload with real inter-group ordering
/// (Add: two loads, an exec, a store per stripe).
fn clean_matrix() -> Vec<ExecMode> {
    vec![
        ExecMode::Pim(OrderingMode::Fence),
        ExecMode::Pim(OrderingMode::OrderLight),
        ExecMode::Pim(OrderingMode::SeqNum),
        ExecMode::Pim(OrderingMode::LouvreVersioned),
        ExecMode::Pim(OrderingMode::BulkBitwiseStrong),
        ExecMode::Gpu,
    ]
}

/// Every ordering backend the memory controller can host, for the
/// per-backend mutation gate.
const BACKENDS: [OrderingMode; 5] = [
    OrderingMode::OrderLight,
    OrderingMode::Fence,
    OrderingMode::SeqNum,
    OrderingMode::LouvreVersioned,
    OrderingMode::BulkBitwiseStrong,
];

#[test]
fn oracle_is_silent_on_clean_scenarios_under_both_cores() {
    for mode in clean_matrix() {
        for core in [SimCore::Cycle, SimCore::Event] {
            for faults in [FaultPlan::none(), FaultPlan::stress(0xfa17)] {
                let s = scenario(WorkloadId::Add, mode, core, faults);
                let outcome = check_scenario(&s).expect("checked run completes");
                assert!(
                    outcome.is_clean(),
                    "mode {mode} core {core:?} faults={}: {}",
                    !faults.is_noop(),
                    outcome.summary()
                );
                assert_eq!(outcome.edges_dropped, 0);
                if mode == ExecMode::Pim(OrderingMode::OrderLight) {
                    assert!(outcome.report.packets > 0, "OrderLight runs must carry packets");
                }
            }
        }
    }
}

#[test]
fn oracle_is_silent_across_the_workload_suite() {
    for workload in [WorkloadId::Triad, WorkloadId::Kmeans] {
        let s = scenario(
            workload,
            ExecMode::Pim(OrderingMode::OrderLight),
            SimCore::Event,
            FaultPlan::stress(7),
        );
        let outcome = check_scenario(&s).expect("checked run completes");
        assert!(outcome.is_clean(), "{workload}: {}", outcome.summary());
    }
}

#[test]
fn mutant_fires_the_oracle_and_corrupts_dram() {
    for core in [SimCore::Cycle, SimCore::Event] {
        let plan =
            FaultPlan { drop_edge: Some(DropEdge { channel: 0, group: 0 }), ..FaultPlan::none() };
        let s = scenario(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight), core, plan);
        let outcome = check_scenario(&s).expect("mutant run completes");
        assert!(outcome.edges_dropped > 0, "core {core:?}: mutation must elide edges");
        assert!(
            outcome.report.violations_total > 0,
            "core {core:?}: oracle must fire on the mutant: {}",
            outcome.summary()
        );
        assert!(
            outcome.stats.verified_mismatches > 0,
            "core {core:?}: the elided edge must corrupt DRAM bytes: {}",
            outcome.summary()
        );
    }
}

/// The per-backend mutation gate: for every ordering backend, eliding
/// the backend's own edges on one (channel, group) must make the
/// checked run visibly dirty — a happens-before violation, a sanity
/// violation, or corrupted DRAM bytes. A backend whose elision hook is
/// wired but whose check stays green would be a vacuous gate.
fn assert_mutation_fires(mode: OrderingMode, core: SimCore) {
    // The adversarial scheduler makes the window opened by the elided
    // edge actually get hit on every backend, not just the slow ones.
    let plan = FaultPlan {
        sched_adversary: true,
        drop_edge: Some(DropEdge { channel: 0, group: 0 }),
        ..FaultPlan::none()
    };
    let s = scenario(WorkloadId::Add, ExecMode::Pim(mode), core, plan);
    let outcome = check_scenario(&s).expect("mutant run completes");
    assert!(outcome.edges_dropped > 0, "{mode} {core:?}: mutation must elide edges");
    assert!(
        !outcome.is_clean(),
        "{mode} {core:?}: elided edges must dirty the check: {}",
        outcome.summary()
    );
}

#[test]
fn mutation_gate_fires_for_every_backend() {
    for mode in BACKENDS {
        assert_mutation_fires(mode, SimCore::Event);
    }
}

#[test]
#[ignore = "tier 2: per-backend mutation gate on the cycle core too; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn mutation_gate_fires_for_every_backend_on_both_cores() {
    for mode in BACKENDS {
        for core in [SimCore::Cycle, SimCore::Event] {
            assert_mutation_fires(mode, core);
        }
    }
}

/// Runs one faulted scenario serially and through pools of the given
/// widths, returning all result vectors for comparison.
fn faulted_stats(seed: u64, core: SimCore, jobs: usize) -> Vec<RunStats> {
    let scenarios: Vec<Scenario> = (0..4)
        .map(|i| {
            let workload = if i % 2 == 0 { WorkloadId::Add } else { WorkloadId::Triad };
            scenario(
                workload,
                ExecMode::Pim(OrderingMode::OrderLight),
                core,
                FaultPlan::stress(seed),
            )
        })
        .collect();
    let tasks: Vec<_> =
        scenarios.into_iter().map(|s| move || s.run().expect("faulted run completes")).collect();
    Pool::new(jobs).run(tasks)
}

#[test]
fn identical_fault_seeds_are_bit_identical_across_cores_and_jobs() {
    let reference = faulted_stats(42, SimCore::Cycle, 1);
    for core in [SimCore::Cycle, SimCore::Event] {
        for jobs in [1, 8] {
            assert_eq!(
                faulted_stats(42, core, jobs),
                reference,
                "seed 42 under core {core:?} jobs {jobs} must match the serial cycle-core run"
            );
        }
    }
}

#[test]
fn different_fault_seeds_perturb_the_schedule() {
    let a = faulted_stats(1, SimCore::Event, 1);
    let b = faulted_stats(2, SimCore::Event, 1);
    assert_ne!(a, b, "different master seeds must produce different schedules");
    for stats in a.iter().chain(&b) {
        assert!(stats.is_correct(), "legal faults must never break functional results");
    }
}
