//! The slow-request log: a served request whose run phase exceeds
//! `--slow-ms` emits one canonical-JSON record to the daemon's stderr
//! with the scenario hash and full phase breakdown. Exercised against
//! the real `orderlight` binary so the test observes the actual stderr
//! stream, with a deliberately large fig10-shaped point (the Triad
//! stream kernel at a big footprint) and a zero threshold so the run
//! phase always qualifies.

use std::io::{BufRead, BufReader, Read};
use std::process::{Command, Stdio};

use orderlight_suite::sim::schema::SCENARIO_SCHEMA_V1;
use orderlight_suite::sim::service::{reply_kind, request};
use orderlight_suite::trace::json;

#[test]
fn slow_requests_log_a_canonical_json_record_to_stderr() {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_orderlight"))
        .args(["serve", "--addr", "127.0.0.1:0", "--slow-ms", "0", "--jobs", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn orderlight serve");

    // The daemon prints `listening on HOST:PORT (...)` before the
    // first accept.
    let stdout = daemon.stdout.take().expect("daemon stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).expect("read banner");
    let addr = banner
        .split_whitespace()
        .nth(2)
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    // A deliberately large fig10 point: the Triad stream kernel at a
    // 512 KiB/channel footprint under OrderLight.
    let line =
        format!(r#"{{"schema": "{SCENARIO_SCHEMA_V1}", "workload": "Triad", "data_kb": 512}}"#);
    let replies = request(&addr, &line).expect("request round-trips");
    let last = replies.last().expect("terminal reply");
    assert_eq!(reply_kind(last).as_deref(), Some("result"));
    let result = json::parse(last).expect("result parses");
    let span = result.get("span").expect("span rides the result");

    let bye = request(&addr, r#"{"cmd": "shutdown"}"#).expect("shutdown");
    assert_eq!(reply_kind(bye.last().expect("bye")).as_deref(), Some("bye"));
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits cleanly");

    let mut stderr = String::new();
    daemon.stderr.take().expect("daemon stderr").read_to_string(&mut stderr).expect("read stderr");
    let record = stderr
        .lines()
        .find(|l| l.contains("\"event\":\"slow_request\""))
        .unwrap_or_else(|| panic!("no slow_request record on stderr: {stderr:?}"));
    let doc = json::parse(record).expect("slow log line is valid JSON");
    assert_eq!(doc.to_json(), record, "slow log line is canonical JSON");
    let hash = doc.get("scenario_hash").and_then(json::Value::as_str).expect("scenario hash");
    assert!(hash.starts_with("0x") && hash.len() == 18, "canonical hash format: {hash}");
    let phases = doc.get("phases").expect("phase breakdown");
    for phase in ["parse_us", "queue_us", "run_us", "serialize_us", "write_us"] {
        assert!(phases.get(phase).and_then(json::Value::as_f64).is_some(), "{phase} present");
    }
    // The logged run phase matches the span the client saw.
    assert_eq!(
        doc.get("run_us").and_then(json::Value::as_f64),
        span.get("run_us").and_then(json::Value::as_f64),
        "logged run phase matches the reply span"
    );
    assert_eq!(doc.get("threshold_us").and_then(json::Value::as_f64), Some(0.0));
}
