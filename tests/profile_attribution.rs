//! Acceptance gates of the stall-attribution profiler:
//!
//! 1. **Conservation** — on every figure scenario profiled, the sum of
//!    attributed stall cycles per cause equals the fence/OrderLight
//!    stall counters the SMs maintain independently. Not a tolerance
//!    check: exact equality, per cause and in total.
//! 2. **Parallel determinism** — profiling a figure's design points at
//!    `--jobs 1` and `--jobs 8` yields byte-identical serialized
//!    reports (the JSON strings are compared, not just the structs).
//! 3. **Observe-only** — attaching the profiler changes no simulated
//!    outcome: `RunStats` are bit-identical to an unprofiled run on the
//!    same core (cross-core report identity lives in
//!    `profile_core_equivalence.rs`).
//!
//! The full fig05 sweep runs in the fast tier; the broader fig10/fig12
//! sweeps are tier 2 (`--include-ignored` / `ORDERLIGHT_TIER2=1`).

use orderlight_suite::profile::{profile_points, profile_scenario, ProfileOutcome};
use orderlight_suite::sim::experiments::{fig05_points, fig10_points, fig12_points, JobSpec};
use orderlight_suite::sim::pool::Pool;
use orderlight_suite::sim::SimCore;
use orderlight_suite::trace::StallCause;

/// Small enough that a full figure sweep is sub-second, large enough
/// that every kernel still streams multiple row-buffer tiles.
const DATA: u64 = 8 * 1024;

fn assert_conserved(figure: &str, outcomes: &[ProfileOutcome]) {
    for (i, o) in outcomes.iter().enumerate() {
        assert!(o.is_conserved(), "{figure} point {i}: {}", o.summary());
        // Spell the per-cause equations out, so a regression names the
        // counter rather than just "not conserved".
        assert_eq!(
            o.report.stall(StallCause::FenceWait) + o.report.stall(StallCause::FenceDrain),
            o.stats.sm.fence_stall_cycles,
            "{figure} point {i}: fence cycles"
        );
        assert_eq!(
            o.report.stall(StallCause::OlWait),
            o.stats.sm.ol_wait_cycles,
            "{figure} point {i}: orderlight wait cycles"
        );
        assert_eq!(
            o.report.stall(StallCause::CreditWait),
            o.stats.sm.credit_wait_cycles,
            "{figure} point {i}: credit wait cycles"
        );
        assert_eq!(
            o.report.total_attributed(),
            o.stats.stall_cycles(),
            "{figure} point {i}: total attributed cycles"
        );
    }
}

fn assert_jobs_invariant(figure: &str, specs: &[JobSpec]) {
    let serial = profile_points(specs, &Pool::new(1)).expect("serial profile sweep runs");
    assert_eq!(serial.len(), specs.len(), "{figure}: one outcome per spec");
    assert_conserved(figure, &serial);
    let parallel = profile_points(specs, &Pool::new(8)).expect("parallel profile sweep runs");
    assert_eq!(parallel, serial, "{figure}: outcomes must be bit-identical across job counts");
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "{figure} point {i}: serialized reports must match byte for byte"
        );
    }
}

#[test]
fn fig05_profiles_conserve_across_job_counts() {
    assert_jobs_invariant("fig05", &fig05_points(DATA));
}

#[test]
#[ignore = "tier 2: profiles the full Figure 10 sweep twice; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig10_profiles_conserve_across_job_counts() {
    assert_jobs_invariant("fig10", &fig10_points(DATA));
}

#[test]
#[ignore = "tier 2: profiles the full Figure 12 sweep twice; run via --include-ignored or ORDERLIGHT_TIER2=1 ./ci.sh"]
fn fig12_profiles_conserve_across_job_counts() {
    assert_jobs_invariant("fig12", &fig12_points(DATA));
}

#[test]
fn fig10_and_fig12_representatives_conserve() {
    // Fast-tier coverage of the tier-2 sweeps: a spread of points from
    // each (different workloads, orderings and BMFs), profiled once.
    for (figure, points) in [("fig10", fig10_points(DATA)), ("fig12", fig12_points(DATA))] {
        let sample: Vec<JobSpec> = points.iter().copied().step_by(9).collect();
        assert!(sample.len() >= 4, "{figure}: sample too thin");
        let outcomes = profile_points(&sample, &Pool::new(2)).expect("sampled profiles run");
        assert_conserved(figure, &outcomes);
    }
}

#[test]
fn profiler_is_observe_only() {
    // The profiler must change nothing about the simulated outcome,
    // under either core; the baseline runs on the same core as the
    // profiled leg so this isolates the sink's effect.
    for core in [SimCore::Cycle, SimCore::Event] {
        for spec in fig05_points(DATA) {
            let baseline = spec
                .builder()
                .core(core)
                .build()
                .expect("baseline builds")
                .run()
                .expect("baseline runs");
            let profiled =
                profile_scenario(&spec.builder().core(core).build().expect("profiled builds"))
                    .expect("profiled run succeeds");
            assert_eq!(
                profiled.stats, baseline,
                "{} {} on {core:?}: profiling must not perturb the run",
                spec.workload, spec.mode
            );
        }
    }
}
