//! Integration test of the copy-and-merge protocol across *both*
//! divergence points (L2 sub-partitions, then the controller's separate
//! read/write queues), driving a pipe + controller pair directly.

use orderlight_suite::core::mapping::{AddressMapping, GroupMap};
use orderlight_suite::core::message::{Marker, MarkerCopy, MemReq, ReqMeta};
use orderlight_suite::core::packet::OrderLightPacket;
use orderlight_suite::core::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight_suite::core::{PimInstruction, PimOp};
use orderlight_suite::hbm::{Channel, TimingParams};
use orderlight_suite::memctrl::{McConfig, MemoryController};
use orderlight_suite::noc::{MemoryPipe, PipeConfig};
use orderlight_suite::pim::{PimUnit, TsSize};

fn pim(op: PimOp, addr: Addr, slot: u16, seq: u64) -> MemReq {
    MemReq::Pim {
        instr: PimInstruction { op, addr, slot: TsSlot(slot), group: MemGroupId(0) },
        meta: ReqMeta { warp: GlobalWarpId::new(0, 0), seq },
    }
}

fn marker(number: u32) -> MemReq {
    MemReq::Marker(MarkerCopy {
        marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number)),
        total_copies: 1,
    })
}

/// Phase boundaries must hold end-to-end: loads (row 0) -> packet ->
/// store (row 1) -> packet -> loads (row 0 again, juicy row hits the
/// scheduler would love to reorder). The store must issue before the
/// post-packet loads even though every queue and sub-partition between
/// the SM and the DRAM got a chance to reorder them.
#[test]
fn ordering_survives_both_divergence_points() {
    let mapping = AddressMapping::hbm_default();
    let cfg =
        McConfig { mapping: mapping.clone(), groups: GroupMap::default(), ..McConfig::default() };
    let mut mc = MemoryController::new(
        cfg,
        Channel::new(TimingParams::hbm_table1(), 16, 2048),
        PimUnit::new(TsSize::Half, 2048, 16),
    );
    let mut pipe = MemoryPipe::new(&PipeConfig::default());

    let row0 = |i: u64| mapping.compose(ChannelId(0), i * 32);
    let row1 = mapping.compose(ChannelId(0), 2048);
    // Stripes 0 and 1 land in different L2 sub-partitions, exercising
    // the copy-and-merge at the slice as well as at the R/W queues.
    pipe.push_request(pim(PimOp::Load, row0(0), 0, 1), 0);
    pipe.push_request(pim(PimOp::Load, row0(1), 1, 2), 0);
    pipe.push_request(marker(1), 0);
    pipe.push_request(pim(PimOp::Store, row1, 0, 3), 0);
    pipe.push_request(marker(2), 0);
    pipe.push_request(pim(PimOp::Load, row0(2), 2, 4), 0);
    pipe.push_request(pim(PimOp::Load, row0(3), 3, 5), 0);

    let mut now = 0u64;
    let mut write_at = None;
    let mut third_read_at = None;
    while !(pipe.is_empty() && mc.is_idle()) {
        pipe.tick(now);
        while let Some(head) = pipe.peek_mc(now) {
            if !mc.can_accept(head) {
                break;
            }
            let req = pipe.pop_mc(now).expect("peeked");
            mc.push(req);
        }
        mc.tick(now);
        let s = mc.stats();
        if s.col_writes == 1 && write_at.is_none() {
            write_at = Some(now);
        }
        if s.col_reads >= 3 && third_read_at.is_none() {
            third_read_at = Some(now);
        }
        now += 1;
        assert!(now < 1_000_000, "pipe+controller wedged");
    }
    assert_eq!(pipe.l2_merges(), 2, "both packets merged at the L2 slice");
    assert_eq!(mc.stats().ol_packets, 2, "both packets merged at the scheduler");
    assert!(
        write_at.expect("store issued") < third_read_at.expect("loads issued"),
        "the store must reach DRAM before any post-packet load"
    );
}

/// Fence probes also survive both divergence points and produce exactly
/// one acknowledgement.
#[test]
fn fence_probe_acks_once_through_the_pipe() {
    let mapping = AddressMapping::hbm_default();
    let cfg =
        McConfig { mapping: mapping.clone(), groups: GroupMap::default(), ..McConfig::default() };
    let mut mc = MemoryController::new(
        cfg,
        Channel::new(TimingParams::hbm_table1(), 16, 2048),
        PimUnit::new(TsSize::Half, 2048, 16),
    );
    let mut pipe = MemoryPipe::new(&PipeConfig::default());
    for i in 0..4u64 {
        pipe.push_request(pim(PimOp::Load, mapping.compose(ChannelId(0), i * 32), i as u16, i), 0);
    }
    pipe.push_request(
        MemReq::Marker(MarkerCopy {
            marker: Marker::FenceProbe {
                warp: GlobalWarpId::new(0, 0),
                fence_id: 7,
                channel: ChannelId(0),
            },
            total_copies: 1,
        }),
        0,
    );
    let mut now = 0u64;
    let mut acks = 0;
    while !(pipe.is_empty() && mc.is_idle()) {
        pipe.tick(now);
        while let Some(head) = pipe.peek_mc(now) {
            if !mc.can_accept(head) {
                break;
            }
            let req = pipe.pop_mc(now).expect("peeked");
            mc.push(req);
        }
        for resp in mc.tick(now) {
            pipe.push_response(resp, now);
        }
        while let Some(resp) = pipe.pop_response(now) {
            if matches!(resp, orderlight_suite::core::MemResp::FenceAck { fence_id: 7, .. }) {
                acks += 1;
            }
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    assert_eq!(acks, 1);
    assert_eq!(mc.stats().col_reads, 4, "all loads issued before the ack path drained");
}
